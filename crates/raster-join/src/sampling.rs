//! Online-sampling spatial aggregation (the §2 comparison point \[65\]).
//!
//! The paper's related work cites spatial online sampling (Wang et al.
//! \[65\]) as the other way to trade accuracy for response time, noting it
//! "is also limited to range queries and does not provide support for
//! join and group-by predicates". This module builds the natural
//! extension of that idea to the paper's query shape — aggregate a
//! uniform random sample of the points through the fused index join and
//! scale up — so the ablation bench can compare the two approximation
//! *knobs* head to head:
//!
//! * **sampling** shrinks the *input* (error ∝ 1/√n, spatially uniform,
//!   polygon-size dependent: sparse polygons get terrible relative error);
//! * **bounded raster join** shrinks the *resolution* (error confined to
//!   an ε-band around polygon boundaries, independent of polygon count).
//!
//! Estimates come with classical 95% confidence intervals (normal
//! approximation with finite-population correction), the online-
//! aggregation interface of \[65\]. Contrast with the raster join's
//! *deterministic* result ranges (§5): those are hard bounds from
//! boundary pixels, these are probabilistic bounds from sampling theory.

use crate::query::{result_slots, Aggregate, Query};
use crate::stats::ExecStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use raster_data::filter::passes;
use raster_data::PointTable;
use raster_geom::Polygon;
use raster_gpu::exec::default_workers;
use raster_gpu::Device;
use raster_index::{AssignMode, GridIndex};
use std::time::Instant;

/// z-score of the two-sided 95% confidence interval.
const Z_95: f64 = 1.959964;

/// The sampling-based approximate join.
pub struct SamplingJoin {
    pub workers: usize,
    /// Number of points to sample (clamped to the input size).
    pub sample_size: usize,
    /// RNG seed — fixed for reproducible experiments.
    pub seed: u64,
    /// Grid-index resolution for the candidate lookups.
    pub index_dim: u32,
}

impl Default for SamplingJoin {
    fn default() -> Self {
        SamplingJoin {
            workers: default_workers(),
            sample_size: 10_000,
            seed: 0,
            index_dim: 1024,
        }
    }
}

/// Per-polygon estimates with 95% confidence intervals.
#[derive(Debug, Clone)]
pub struct SamplingOutput {
    /// Scaled-up estimates of the aggregate per polygon.
    pub estimates: Vec<f64>,
    /// Half-width of the 95% CI per polygon; the true value lies in
    /// `estimate ± ci` with ~95% probability.
    pub ci: Vec<f64>,
    /// Points actually sampled.
    pub sampled: usize,
    pub stats: ExecStats,
}

impl SamplingJoin {
    pub fn new(sample_size: usize, seed: u64) -> Self {
        SamplingJoin {
            sample_size,
            seed,
            ..Default::default()
        }
    }

    /// Execute `query` over a uniform sample of `points`. Supports COUNT
    /// and SUM (the distributive aggregates with unbiased Horvitz–
    /// Thompson estimators); AVG is the ratio of the two and gets no CI.
    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> SamplingOutput {
        device.reset_stats();
        let mut stats = ExecStats::default();
        let nslots = result_slots(polys);
        let total = points.len();
        if polys.is_empty() || total == 0 {
            return SamplingOutput {
                estimates: vec![0.0; nslots],
                ci: vec![0.0; nslots],
                sampled: 0,
                stats,
            };
        }
        let n = self.sample_size.min(total);
        let extent = crate::bounded::polygon_extent(polys);

        let t0 = Instant::now();
        let index = GridIndex::build(
            polys,
            extent,
            self.index_dim,
            self.index_dim,
            AssignMode::Exact,
            self.workers,
        );
        stats.index_build = t0.elapsed();

        // Sample n distinct rows without replacement.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rows = rand::seq::index::sample(&mut rng, total, n);

        // Only the sample crosses the bus — that is the whole point.
        let point_bytes = PointTable::point_bytes(query.attrs_uploaded());
        device.record_upload((n * point_bytes) as u64);

        let agg_attr = query.aggregate.attr();
        let preds = &query.predicates;

        // Accumulate per-polygon: sample hit count, Σy and Σy² of the
        // per-point contribution y (1 for COUNT, the attribute for SUM).
        let proc0 = Instant::now();
        let mut hits = vec![0u64; nslots];
        let mut sum_y = vec![0f64; nslots];
        let mut sum_y2 = vec![0f64; nslots];
        let mut pip = 0u64;
        for ri in rows.iter() {
            if !preds.is_empty() && !passes(points, ri, preds) {
                continue;
            }
            let p = points.point(ri);
            for &cand in index.candidates(p) {
                pip += 1;
                if polys[cand as usize].contains(p) {
                    let id = cand as usize;
                    let y = match agg_attr {
                        None => 1.0,
                        Some(a) => points.attr(a)[ri] as f64,
                    };
                    hits[id] += 1;
                    sum_y[id] += y;
                    sum_y2[id] += y * y;
                }
            }
        }
        stats.processing = proc0.elapsed();
        stats.pip_tests = pip;

        device.record_download((nslots * 16) as u64);
        let ts = device.stats();
        stats.upload_bytes = ts.bytes_up;
        stats.download_bytes = ts.bytes_down;
        stats.transfer = device.modelled_transfer_time();

        // Horvitz–Thompson scale-up with finite-population correction.
        let scale = total as f64 / n as f64;
        let fpc = 1.0 - n as f64 / total as f64;
        let mut estimates = vec![0.0; nslots];
        let mut ci = vec![0.0; nslots];
        for id in 0..nslots {
            // Mean and variance of y over ALL n sampled points (zeros for
            // points outside the polygon included).
            let mean = sum_y[id] / n as f64;
            let var = (sum_y2[id] / n as f64 - mean * mean).max(0.0);
            match query.aggregate {
                Aggregate::Count | Aggregate::Sum(_) => {
                    estimates[id] = scale * sum_y[id];
                    // Var(N·ȳ) = N²·s²/n·fpc.
                    let se = total as f64 * (var / n as f64 * fpc).sqrt();
                    ci[id] = Z_95 * se;
                }
                Aggregate::Avg(_) => {
                    // Ratio estimator: sample mean over the polygon's hits.
                    estimates[id] = if hits[id] == 0 {
                        0.0
                    } else {
                        sum_y[id] / hits[id] as f64
                    };
                    ci[id] = f64::NAN; // no CI for the ratio estimator
                }
            }
        }

        SamplingOutput {
            estimates,
            ci,
            sampled: n,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_join::IndexJoin;
    use raster_data::generators::{nyc_extent, uniform_points, TaxiModel};
    use raster_data::polygons::synthetic_polygons;

    fn truth(points: &PointTable, polys: &[Polygon], q: &Query) -> Vec<f64> {
        IndexJoin::cpu_single()
            .execute(points, polys, q, &Device::default())
            .values(q.aggregate)
    }

    #[test]
    fn full_sample_is_exact_with_zero_ci() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(6, &extent, 81);
        let pts = uniform_points(2_000, &extent, 82);
        let out =
            SamplingJoin::new(2_000, 7).execute(&pts, &polys, &Query::count(), &Device::default());
        let want = truth(&pts, &polys, &Query::count());
        for (e, w) in out.estimates.iter().zip(&want) {
            assert!((e - w).abs() < 1e-9, "{e} vs {w}");
        }
        // n = N → finite-population correction zeroes the CI.
        assert!(out.ci.iter().all(|&c| c.abs() < 1e-9));
    }

    #[test]
    fn cis_cover_the_truth_for_most_polygons() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(12, &extent, 83);
        let pts = uniform_points(20_000, &extent, 84);
        let want = truth(&pts, &polys, &Query::count());
        // Over several seeds, ~95% of (seed, polygon) CIs must cover the
        // truth; we assert a loose 85% to keep the test seed-robust.
        let mut covered = 0usize;
        let mut cases = 0usize;
        for seed in 0..10 {
            let out = SamplingJoin::new(2_000, seed).execute(
                &pts,
                &polys,
                &Query::count(),
                &Device::default(),
            );
            for (id, w) in want.iter().enumerate() {
                cases += 1;
                if (out.estimates[id] - w).abs() <= out.ci[id] {
                    covered += 1;
                }
            }
        }
        let rate = covered as f64 / cases as f64;
        assert!(rate > 0.85, "coverage {rate:.2} too low");
    }

    #[test]
    fn larger_samples_give_tighter_intervals() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(8, &extent, 85);
        let pts = uniform_points(30_000, &extent, 86);
        let small =
            SamplingJoin::new(500, 3).execute(&pts, &polys, &Query::count(), &Device::default());
        let large =
            SamplingJoin::new(10_000, 3).execute(&pts, &polys, &Query::count(), &Device::default());
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&large.ci) < avg(&small.ci) * 0.5,
            "20× sample should at least halve the average CI: {} vs {}",
            avg(&large.ci),
            avg(&small.ci)
        );
    }

    #[test]
    fn sampling_does_less_work_than_full_join() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(8, &extent, 87);
        let pts = uniform_points(20_000, &extent, 88);
        let dev = Device::default();
        let sampled = SamplingJoin::new(1_000, 5).execute(&pts, &polys, &Query::count(), &dev);
        let full = IndexJoin::cpu_single().execute(&pts, &polys, &Query::count(), &dev);
        assert!(sampled.stats.pip_tests * 10 < full.stats.pip_tests.max(1));
        assert!(sampled.stats.upload_bytes < pts.upload_bytes(0));
    }

    #[test]
    fn sum_estimates_are_unbiased_in_aggregate() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(5, &extent, 89);
        let pts = TaxiModel::default().generate(15_000, 90);
        let fare = pts.attr_index("fare").unwrap();
        let q = Query::sum(fare);
        let want = truth(&pts, &polys, &q);
        let total_want: f64 = want.iter().sum();
        // Average of estimates over seeds approaches the truth.
        let mut total_est = 0.0;
        let runs = 8;
        for seed in 0..runs {
            let out = SamplingJoin::new(3_000, seed).execute(&pts, &polys, &q, &Device::default());
            total_est += out.estimates.iter().sum::<f64>();
        }
        let mean_est = total_est / runs as f64;
        assert!(
            (mean_est - total_want).abs() < 0.1 * total_want,
            "{mean_est} vs {total_want}"
        );
    }

    #[test]
    fn avg_uses_ratio_estimator_without_ci() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(4, &extent, 91);
        let pts = TaxiModel::default().generate(10_000, 92);
        let fare = pts.attr_index("fare").unwrap();
        let q = Query::avg(fare);
        let want = truth(&pts, &polys, &q);
        let counts = truth(&pts, &polys, &Query::count());
        let out = SamplingJoin::new(5_000, 11).execute(&pts, &polys, &q, &Device::default());
        for id in 0..want.len() {
            // The ratio estimator is only meaningful where the sample has
            // support; judge polygons holding a solid share of the data.
            if counts[id] > 1_000.0 {
                assert!(
                    (out.estimates[id] - want[id]).abs() < 0.2 * want[id],
                    "poly {id}: {} vs {}",
                    out.estimates[id],
                    want[id]
                );
            }
            assert!(out.ci[id].is_nan());
        }
    }

    #[test]
    fn predicates_are_respected() {
        use raster_data::filter::{CmpOp, Predicate};
        let extent = nyc_extent();
        let polys = synthetic_polygons(4, &extent, 93);
        let pts = TaxiModel::default().generate(8_000, 94);
        let hour = pts.attr_index("hour").unwrap();
        let q = Query::count().with_predicates(vec![Predicate::new(hour, CmpOp::Lt, 84.0)]);
        let all =
            SamplingJoin::new(4_000, 1).execute(&pts, &polys, &Query::count(), &Device::default());
        let filt = SamplingJoin::new(4_000, 1).execute(&pts, &polys, &q, &Device::default());
        let (ta, tf) = (
            all.estimates.iter().sum::<f64>(),
            filt.estimates.iter().sum::<f64>(),
        );
        assert!(tf < ta * 0.7, "filter must cut the estimate: {tf} vs {ta}");
    }

    #[test]
    fn empty_inputs() {
        let polys = synthetic_polygons(3, &nyc_extent(), 95);
        let out = SamplingJoin::new(100, 0).execute(
            &PointTable::new(),
            &polys,
            &Query::count(),
            &Device::default(),
        );
        assert_eq!(out.estimates, vec![0.0; 3]);
        assert_eq!(out.sampled, 0);
    }
}
