//! Higher statistical moments via extra FBO channels (§5, §8).
//!
//! Section 5 claims the raster approach extends "to any distributive or
//! algebraic (but not to holistic) aggregates in a straightforward
//! manner"; §8 sketches the mechanism (extra FBO color attachments). This
//! module makes the claim concrete for the next algebraic aggregate after
//! AVG: **variance** (and its square root, the standard deviation), which
//! combines three distributive pieces — `n`, `Σx`, `Σx²` — as
//! `Var = Σx²/n − (Σx/n)²`.
//!
//! [`MomentsRasterJoin`] renders the points once into a multi-render-
//! target FBO with two channels per attribute — the value and its square,
//! computed *in the vertex shader* so the squares never cross the PCIe
//! bus — then folds the channels per polygon as usual. This is exactly
//! the DrawPoints/DrawPolygons pipeline of §4.1, widened.
//!
//! Like every bounded-raster result, the moments are ε-approximate: only
//! points within ε of a polygon boundary can be mis-assigned.

use crate::bounded::polygon_extent;
use crate::query::result_slots;
use crate::stats::ExecStats;
use raster_data::filter::passes;
use raster_data::{PointTable, Predicate};
use raster_geom::hausdorff::resolution_for_epsilon;
use raster_geom::triangulate::triangulate_all;
use raster_geom::Polygon;
use raster_gpu::exec::{default_workers, parallel_dynamic, parallel_ranges};
use raster_gpu::raster::rasterize_triangle_spans;
use raster_gpu::ssbo::{AtomicF64Array, AtomicU64Array};
use raster_gpu::{Device, MrtFbo, Viewport};
use std::time::Instant;

/// A query computing count, sum, and sum-of-squares for each listed
/// attribute in a single pass.
#[derive(Debug, Clone)]
pub struct MomentsQuery {
    /// Attribute columns to compute moments for (deduplicated).
    pub attrs: Vec<usize>,
    pub predicates: Vec<Predicate>,
    pub epsilon: f64,
}

impl MomentsQuery {
    pub fn new(mut attrs: Vec<usize>) -> Self {
        attrs.sort_unstable();
        attrs.dedup();
        MomentsQuery {
            attrs,
            predicates: Vec::new(),
            epsilon: 10.0,
        }
    }

    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "ε must be positive");
        self.epsilon = epsilon;
        self
    }

    pub fn with_predicates(mut self, preds: Vec<Predicate>) -> Self {
        self.predicates = preds;
        self
    }

    /// Attribute columns that must be uploaded: the moment attributes
    /// plus any filter attributes. Squares are derived on-device.
    fn attrs_uploaded(&self) -> usize {
        let mut a = self.attrs.clone();
        for p in &self.predicates {
            if !a.contains(&p.attr) {
                a.push(p.attr);
            }
        }
        a.len()
    }
}

/// Per-polygon moment accumulators for each queried attribute.
#[derive(Debug, Clone)]
pub struct MomentsOutput {
    pub counts: Vec<u64>,
    /// `sums[c][poly]` = Σ attr_c over the polygon's points.
    pub sums: Vec<Vec<f64>>,
    /// `sumsqs[c][poly]` = Σ attr_c² over the polygon's points.
    pub sumsqs: Vec<Vec<f64>>,
    pub stats: ExecStats,
}

impl MomentsOutput {
    /// Per-polygon mean of attribute channel `c` (0 where empty).
    pub fn mean(&self, c: usize) -> Vec<f64> {
        self.sums[c]
            .iter()
            .zip(&self.counts)
            .map(|(&s, &n)| if n == 0 { 0.0 } else { s / n as f64 })
            .collect()
    }

    /// Per-polygon *population* variance of channel `c`. Clamped at zero:
    /// the algebraic form Σx²/n − mean² can dip epsilon-negative in
    /// floating point.
    pub fn variance(&self, c: usize) -> Vec<f64> {
        self.sumsqs[c]
            .iter()
            .zip(&self.sums[c])
            .zip(&self.counts)
            .map(|((&sq, &s), &n)| {
                if n == 0 {
                    0.0
                } else {
                    let m = s / n as f64;
                    (sq / n as f64 - m * m).max(0.0)
                }
            })
            .collect()
    }

    /// Per-polygon population standard deviation of channel `c`.
    pub fn stddev(&self, c: usize) -> Vec<f64> {
        self.variance(c).into_iter().map(f64::sqrt).collect()
    }
}

/// Bounded raster join computing count/sum/sum-of-squares per attribute.
pub struct MomentsRasterJoin {
    pub workers: usize,
}

impl Default for MomentsRasterJoin {
    fn default() -> Self {
        MomentsRasterJoin {
            workers: default_workers(),
        }
    }
}

impl MomentsRasterJoin {
    pub fn new(workers: usize) -> Self {
        MomentsRasterJoin { workers }
    }

    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        mq: &MomentsQuery,
        device: &Device,
    ) -> MomentsOutput {
        device.reset_stats();
        let mut stats = ExecStats::default();
        let nslots = result_slots(polys);
        let k = mq.attrs.len();
        let counts = AtomicU64Array::new(nslots);
        // Channel layout: [sum(a₀), sumsq(a₀), sum(a₁), sumsq(a₁), ...].
        let accs: Vec<AtomicF64Array> = (0..2 * k).map(|_| AtomicF64Array::new(nslots)).collect();
        if polys.is_empty() {
            return MomentsOutput {
                counts: Vec::new(),
                sums: vec![Vec::new(); k],
                sumsqs: vec![Vec::new(); k],
                stats,
            };
        }

        let t0 = Instant::now();
        let tris = triangulate_all(polys);
        stats.triangulation = t0.elapsed();

        let extent = polygon_extent(polys);
        let (w, h) = resolution_for_epsilon(&extent, mq.epsilon);
        let tiles = Viewport::new(extent, w, h).split(device.config().max_fbo_dim);

        let point_bytes = PointTable::point_bytes(mq.attrs_uploaded());
        let per_batch = device.points_per_batch(point_bytes);
        let preds = &mq.predicates;

        let proc0 = Instant::now();
        let mut start = 0usize;
        loop {
            let end = (start + per_batch).min(points.len());
            device.record_upload(((end - start) * point_bytes) as u64);
            stats.batches += 1;
            for vp in &tiles {
                let fbo = MrtFbo::new(vp.width, vp.height, 2 * k);
                // DrawPoints: blend value and value² per attribute — the
                // square is computed here, shader-side.
                parallel_ranges(end - start, self.workers, |s, e| {
                    let mut vals = vec![0f32; 2 * k];
                    for i in (start + s)..(start + e) {
                        if !preds.is_empty() && !passes(points, i, preds) {
                            continue;
                        }
                        if let Some((x, y)) = vp.pixel_of(points.point(i)) {
                            for (c, &attr) in mq.attrs.iter().enumerate() {
                                let v = points.attr(attr)[i];
                                vals[2 * c] = v;
                                vals[2 * c + 1] = v * v;
                            }
                            fbo.blend_add(x, y, &vals);
                        }
                    }
                });
                // DrawPolygons: fold every channel per covered span.
                parallel_dynamic(tris.len(), self.workers, 16, |ti| {
                    let t = &tris[ti];
                    let id = t.poly_id as usize;
                    let mut cnt_acc = 0u64;
                    let mut acc = vec![0f64; 2 * k];
                    rasterize_triangle_spans(
                        [vp.to_screen(t.a), vp.to_screen(t.b), vp.to_screen(t.c)],
                        vp.width,
                        vp.height,
                        |y, x0, x1| {
                            cnt_acc += fbo.span_totals(y, x0, x1, &mut acc);
                        },
                    );
                    if cnt_acc > 0 {
                        counts.add(id, cnt_acc);
                        for (c, a) in accs.iter().enumerate() {
                            if acc[c] != 0.0 {
                                a.add(id, acc[c]);
                            }
                        }
                    }
                });
                stats.passes += 1;
            }
            if end >= points.len() {
                break;
            }
            start = end;
        }
        stats.processing = proc0.elapsed();

        // Read-back: count + 2k f64 accumulators per polygon.
        device.record_download((nslots * 8 * (1 + 2 * k)) as u64);
        let ts = device.stats();
        stats.upload_bytes = ts.bytes_up;
        stats.download_bytes = ts.bytes_down;
        stats.transfer = device.modelled_transfer_time();

        MomentsOutput {
            counts: counts.to_vec(),
            sums: (0..k).map(|c| accs[2 * c].to_vec()).collect(),
            sumsqs: (0..k).map(|c| accs[2 * c + 1].to_vec()).collect(),
            stats,
        }
    }
}

/// Exact reference: brute-force PIP moments, for tests and accuracy
/// experiments.
pub fn exact_moments(
    points: &PointTable,
    polys: &[Polygon],
    attrs: &[usize],
) -> (Vec<u64>, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let nslots = result_slots(polys);
    let mut counts = vec![0u64; nslots];
    let mut sums = vec![vec![0f64; nslots]; attrs.len()];
    let mut sumsqs = vec![vec![0f64; nslots]; attrs.len()];
    for i in 0..points.len() {
        let p = points.point(i);
        for poly in polys {
            if poly.contains(p) {
                let id = poly.id() as usize;
                counts[id] += 1;
                for (c, &a) in attrs.iter().enumerate() {
                    let v = points.attr(a)[i] as f64;
                    sums[c][id] += v;
                    sumsqs[c][id] += v * v;
                }
            }
        }
    }
    (counts, sums, sumsqs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_data::generators::{nyc_extent, TaxiModel};
    use raster_data::polygons::synthetic_polygons;
    use raster_geom::Point;

    fn setup() -> (PointTable, Vec<Polygon>) {
        (
            TaxiModel::default().generate(3_000, 23),
            synthetic_polygons(8, &nyc_extent(), 24),
        )
    }

    #[test]
    fn variance_matches_exact_reference_closely() {
        let (pts, polys) = setup();
        let fare = pts.attr_index("fare").unwrap();
        let mq = MomentsQuery::new(vec![fare]).with_epsilon(5.0);
        let out = MomentsRasterJoin::new(2).execute(&pts, &polys, &mq, &Device::default());
        let (counts, sums, sumsqs) = exact_moments(&pts, &polys, &[fare]);
        // ε = 5 m over the NYC extent keeps boundary mis-assignments rare;
        // compare per polygon with a tolerance driven by its count drift.
        for id in 0..counts.len() {
            if counts[id] < 20 {
                continue; // tiny slots: a single moved point dominates
            }
            let exact_mean = sums[0][id] / counts[id] as f64;
            let exact_var = sumsqs[0][id] / counts[id] as f64 - exact_mean * exact_mean;
            let got_mean = out.mean(0)[id];
            let got_var = out.variance(0)[id];
            assert!(
                (got_mean - exact_mean).abs() < 0.05 * exact_mean.abs().max(1.0),
                "poly {id}: mean {got_mean} vs {exact_mean}"
            );
            assert!(
                (got_var - exact_var).abs() < 0.10 * exact_var.abs().max(1.0),
                "poly {id}: var {got_var} vs {exact_var}"
            );
        }
    }

    #[test]
    fn constant_attribute_has_zero_variance() {
        // All attribute values equal → variance must be (numerically) zero
        // in every polygon, and stddev likewise.
        let mut pts = PointTable::with_capacity(100, &["c"]);
        let extent = nyc_extent();
        let step_x = extent.width() / 10.0;
        let step_y = extent.height() / 10.0;
        for gy in 0..10 {
            for gx in 0..10 {
                pts.push(
                    Point::new(
                        extent.min.x + (gx as f64 + 0.5) * step_x,
                        extent.min.y + (gy as f64 + 0.5) * step_y,
                    ),
                    &[7.25],
                );
            }
        }
        let polys = synthetic_polygons(5, &extent, 25);
        let mq = MomentsQuery::new(vec![0]).with_epsilon(10.0);
        let out = MomentsRasterJoin::new(2).execute(&pts, &polys, &mq, &Device::default());
        for (id, &n) in out.counts.iter().enumerate() {
            if n > 0 {
                assert!(out.variance(0)[id] < 1e-6, "poly {id}");
                let m = out.mean(0)[id];
                assert!((m - 7.25).abs() < 1e-4, "poly {id}: mean {m}");
            }
        }
    }

    #[test]
    fn two_attributes_in_one_pass() {
        let (pts, polys) = setup();
        let fare = pts.attr_index("fare").unwrap();
        let dist = pts.attr_index("distance").unwrap();
        let mq = MomentsQuery::new(vec![fare, dist]).with_epsilon(10.0);
        let out = MomentsRasterJoin::new(2).execute(&pts, &polys, &mq, &Device::default());
        assert_eq!(out.sums.len(), 2);
        assert_eq!(out.sumsqs.len(), 2);
        // Fare and distance are different columns: their sums must differ.
        let s0: f64 = out.sums[0].iter().sum();
        let s1: f64 = out.sums[1].iter().sum();
        assert!(s0 > 0.0 && s1 > 0.0 && (s0 - s1).abs() > 1e-3);
    }

    #[test]
    fn squares_do_not_cross_the_bus() {
        let (pts, polys) = setup();
        let fare = pts.attr_index("fare").unwrap();
        let dev = Device::default();
        let one = MomentsRasterJoin::new(1).execute(
            &pts,
            &polys,
            &MomentsQuery::new(vec![fare]).with_epsilon(20.0),
            &dev,
        );
        // Upload = positions + ONE attribute column, even though two
        // channels (value and value²) are blended.
        assert_eq!(one.stats.upload_bytes, pts.upload_bytes(1));
        // Download carries count + sum + sumsq per polygon.
        assert_eq!(one.stats.download_bytes, (one.counts.len() * 8 * 3) as u64);
    }

    #[test]
    fn duplicate_attrs_are_deduplicated() {
        let mq = MomentsQuery::new(vec![3, 1, 3, 1, 1]);
        assert_eq!(mq.attrs, vec![1, 3]);
    }

    #[test]
    fn variance_never_negative() {
        let (pts, polys) = setup();
        let tip = pts.attr_index("tip").unwrap();
        let mq = MomentsQuery::new(vec![tip]).with_epsilon(50.0);
        let out = MomentsRasterJoin::new(2).execute(&pts, &polys, &mq, &Device::default());
        assert!(out.variance(0).iter().all(|&v| v >= 0.0));
        assert!(out.stddev(0).iter().all(|&s| s >= 0.0 && s.is_finite()));
    }

    #[test]
    fn empty_polygons_give_empty_output() {
        let (pts, _) = setup();
        let out = MomentsRasterJoin::new(1).execute(
            &pts,
            &[],
            &MomentsQuery::new(vec![0]),
            &Device::default(),
        );
        assert!(out.counts.is_empty());
        assert!(out.sums[0].is_empty());
    }
}
