//! Accurate raster join (§4.3): exact results with a minimal number of
//! PIP tests.
//!
//! Three steps:
//!
//! 1. **Draw outlines** — every polygon boundary segment is rendered with
//!    conservative rasterization into a boundary FBO, so every pixel that
//!    is even partially crossed by an outline is marked.
//! 2. **Draw points** (Procedure AccuratePoints) — points landing on
//!    boundary pixels are resolved exactly via the grid index + PIP
//!    (Procedure JoinPoint); all other points blend into the point FBO as
//!    in the bounded variant.
//! 3. **Draw polygons** (Procedure AccuratePolygons) — polygon fragments
//!    on boundary pixels are discarded (their points were handled in step
//!    2); interior fragments fold the FBO partial aggregates into the
//!    result.

use crate::query::{result_slots, JoinOutput, Query};
use crate::stats::ExecStats;
use raster_data::filter::passes;
use raster_data::PointTable;
use raster_geom::triangulate::{triangulate_all, Triangle};
use raster_geom::{Point, Polygon};
use raster_gpu::exec::{block_for, default_workers, parallel_dynamic, parallel_ranges};
use raster_gpu::raster::{
    rasterize_segment_conservative, rasterize_segment_thick_outline, rasterize_triangle_spans,
};
use raster_gpu::ssbo::{AtomicF64Array, AtomicU64Array};
use raster_gpu::{BoundaryFbo, Device, FboPool, RasterConfig, Viewport};
use raster_index::{AssignMode, GridIndex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How the boundary-FBO outline pass is rasterized (§6.1): NVIDIA GPUs
/// expose `GL_NV_conservative_raster`; everyone else draws "a thicker
/// outline and discard\[s\] pixels that do not intersect with the drawn
/// polygon". Both produce the same boundary pixels (verified in tests),
/// so results are identical either way — only the mechanism differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConservativeMode {
    /// Grid-traversal supercover (the hardware extension path).
    #[default]
    Dda,
    /// The §6.1 fallback: thick quad + fragment-shader discard.
    ThickOutline,
}

/// The accurate (exact) raster join operator.
pub struct AccurateRasterJoin {
    pub workers: usize,
    /// Canvas resolution per axis. Unlike the bounded variant the canvas
    /// is a single FBO (accuracy does not depend on resolution — only the
    /// number of PIP tests does), so this is capped by the device limit.
    pub canvas_dim: u32,
    /// Grid-index resolution per axis (paper: 1024 on the GPU, §7.1).
    pub index_dim: u32,
    /// Outline rasterization mechanism (§6.1).
    pub conservative: ConservativeMode,
    /// Pipeline toggles. Only `sharding` applies here: the accurate
    /// canvas is a single FBO, so there are no tiles to bin — but the
    /// interior-point blend has the same atomic-contention profile as the
    /// bounded variant and takes the same shard-merge path.
    pub config: RasterConfig,
    /// Planner-chosen points-per-batch override; capped by the device
    /// memory budget. `None` fills the device budget (the default).
    pub batch_points: Option<usize>,
}

impl Default for AccurateRasterJoin {
    fn default() -> Self {
        AccurateRasterJoin {
            workers: default_workers(),
            canvas_dim: 2048,
            index_dim: 1024,
            conservative: ConservativeMode::Dda,
            config: RasterConfig::default(),
            batch_points: None,
        }
    }
}

/// Polygon-side state reusable across point batches/chunks of one query
/// (the accurate counterpart of [`crate::bounded::PreparedBounded`]): the
/// triangulation, canvas viewport, conservative boundary FBO and grid
/// index. Chunked scans (`raster-join::stream`, §7.7) call
/// [`AccurateRasterJoin::prepare`] once and
/// [`AccurateRasterJoin::execute_prepared`] per chunk.
pub struct PreparedAccurate<'a> {
    polys: &'a [Polygon],
    state: Option<AccurateState>,
    nslots: usize,
    triangulation: std::time::Duration,
    index_build: std::time::Duration,
    outline: std::time::Duration,
    /// FBO/shard recycling shared across every chunk executed against
    /// this preparation (see `PreparedBounded::pool`).
    pool: FboPool,
}

struct AccurateState {
    tris: Vec<Triangle>,
    vp: Viewport,
    boundary: BoundaryFbo,
    index: GridIndex,
}

impl PreparedAccurate<'_> {
    /// Wall time of the one-off conservative outline pass. It is part of
    /// *processing* time in one-shot execution (unlike triangulation and
    /// index build, which §7.1 excludes); a chunk loop must charge it
    /// exactly once, not per chunk.
    pub fn outline_time(&self) -> std::time::Duration {
        self.outline
    }

    /// Canvases checked out of this preparation's pool right now. Zero
    /// between passes; the streaming error-path tests assert it drains
    /// back to zero after a failed scan.
    pub fn outstanding_canvases(&self) -> usize {
        self.pool.outstanding()
    }
}

impl AccurateRasterJoin {
    pub fn new(workers: usize) -> Self {
        AccurateRasterJoin {
            workers,
            ..Default::default()
        }
    }

    /// Triangulate, build the grid index and draw the conservative
    /// outline pass — everything that depends only on the polygons and
    /// can be reused across point chunks.
    pub fn prepare<'a>(&self, polys: &'a [Polygon], device: &Device) -> PreparedAccurate<'a> {
        let nslots = result_slots(polys);
        if polys.is_empty() {
            return PreparedAccurate {
                polys,
                state: None,
                nslots,
                triangulation: std::time::Duration::ZERO,
                index_build: std::time::Duration::ZERO,
                outline: std::time::Duration::ZERO,
                pool: FboPool::new(),
            };
        }
        let t0 = Instant::now();
        let tris = triangulate_all(polys);
        let triangulation = t0.elapsed();

        let extent = crate::bounded::polygon_extent(polys);
        let dim = self.canvas_dim.min(device.config().max_fbo_dim);
        // Square-ish canvas, shared rule with the planner's cost model.
        let (w, h) = Viewport::canvas_for_extent(&extent, dim);
        let vp = Viewport::new(extent, w, h);

        // On-the-fly GPU index build (§6.1), timed separately (Table 1).
        // Exact-geometry assignment keeps candidate lists short; the
        // scanline build is cheap enough to run on the fly (the paper
        // builds MBR-based on the GPU, §6.1, but also notes the exact
        // optimisation of §7.1 — our synthetic polygons have looser MBRs
        // than real neighborhoods, so exact assignment is the realistic
        // choice; the ablation bench compares both).
        let t1 = Instant::now();
        let index = GridIndex::build(
            polys,
            extent,
            self.index_dim,
            self.index_dim,
            AssignMode::Exact,
            self.workers,
        );
        let index_build = t1.elapsed();

        // Step 1: conservative outline pass.
        let t2 = Instant::now();
        let boundary = BoundaryFbo::new(w, h);
        let poly_block = block_for(polys.len(), self.workers);
        parallel_dynamic(polys.len(), self.workers, poly_block, |pi| {
            for (a, b) in polys[pi].all_edges() {
                let sa = vp.to_screen(a);
                let sb = vp.to_screen(b);
                match self.conservative {
                    ConservativeMode::Dda => {
                        rasterize_segment_conservative(sa, sb, w, h, |x, y| boundary.mark(x, y))
                    }
                    ConservativeMode::ThickOutline => {
                        rasterize_segment_thick_outline(sa, sb, w, h, |x, y| boundary.mark(x, y))
                    }
                }
            }
        });
        let outline = t2.elapsed();
        PreparedAccurate {
            polys,
            state: Some(AccurateState {
                tris,
                vp,
                boundary,
                index,
            }),
            nslots,
            triangulation,
            index_build,
            outline,
            pool: FboPool::new(),
        }
    }

    pub fn execute(
        &self,
        points: &PointTable,
        polys: &[Polygon],
        query: &Query,
        device: &Device,
    ) -> JoinOutput {
        let prepared = self.prepare(polys, device);
        let mut out = self.execute_prepared(&prepared, points, query, device);
        // One-shot execution charges the outline pass to processing, as
        // the paper's step 1 runs inside the query (§4.3); chunk loops
        // charge it once via `PreparedAccurate::outline_time`.
        if prepared.state.is_some() {
            out.stats.processing += prepared.outline;
            out.stats.polygon_stage += prepared.outline;
            out.stats.passes += 1;
        }
        out
    }

    /// Execute against a prepared polygon side (chunked scans reuse the
    /// preparation — including the outline pass — across every chunk).
    /// The outline pass is *not* charged here; see
    /// [`PreparedAccurate::outline_time`].
    pub fn execute_prepared(
        &self,
        prepared: &PreparedAccurate<'_>,
        points: &PointTable,
        query: &Query,
        device: &Device,
    ) -> JoinOutput {
        device.reset_stats();
        let mut stats = ExecStats::default();
        let nslots = prepared.nslots;
        let counts = AtomicU64Array::new(nslots);
        let sums = AtomicF64Array::new(nslots);
        let Some(state) = prepared.state.as_ref() else {
            return JoinOutput {
                counts: Vec::new(),
                sums: Vec::new(),
                stats,
            };
        };
        let polys = prepared.polys;
        let (tris, vp, boundary, index) = (&state.tris, &state.vp, &state.boundary, &state.index);
        let (w, h) = (vp.width, vp.height);
        stats.triangulation = prepared.triangulation;
        stats.index_build = prepared.index_build;

        let proc0 = Instant::now();

        // Step 2: point pass (compute-shader style), batched out-of-core.
        let agg_attr = query.aggregate.attr();
        let attrs_up = query.attrs_uploaded();
        let point_bytes = PointTable::point_bytes(attrs_up);
        let per_batch = self
            .batch_points
            .map_or(usize::MAX, |b| b.max(1))
            .min(device.points_per_batch(point_bytes));
        let pip_tests = AtomicU64::new(0);
        let fragments = AtomicU64::new(0);
        let preds = &query.predicates;
        let pool = &prepared.pool;
        let fbo = pool.acquire(w, h);
        let pixels = w as usize * h as usize;

        let point_stage0 = Instant::now();
        let mut start = 0usize;
        while start < points.len() {
            let end = (start + per_batch).min(points.len());
            device.record_upload(((end - start) * point_bytes) as u64);
            stats.batches += 1;
            let survivors = crate::bounded::estimate_survivors(points, start, end, preds, vp);
            if self.config.use_shards(survivors, pixels, self.workers) {
                // Sharded interior blend: each shard worker scans its
                // point subrange privately; boundary points take the
                // exact PIP path inline, as before (SSBO atomics are
                // per-polygon and uncontended compared to per-pixel).
                // PIP-test counts accumulate per shard — one padded slot
                // each, folded once below — so boundary-dense workloads
                // don't serialize on a single shared counter.
                let mut shards = pool.acquire_shards(pixels, self.workers);
                const PAD: usize = 8; // one 64-byte cache line per slot
                let pip_by_shard: Vec<AtomicU64> = (0..shards.shard_count() * PAD)
                    .map(|_| AtomicU64::new(0))
                    .collect();
                shards.accumulate_with(end - start, |shard, rel| {
                    let i = start + rel;
                    if !preds.is_empty() && !passes(points, i, preds) {
                        return None;
                    }
                    let p = points.point(i);
                    let (x, y) = vp.pixel_of(p)?;
                    if boundary.is_boundary(x, y) {
                        let t = join_point(index, polys, p, i, agg_attr, points, &counts, &sums);
                        pip_by_shard[shard * PAD].fetch_add(t, Ordering::Relaxed);
                        return None;
                    }
                    let v = agg_attr.map_or(0.0, |a| points.attr(a)[i]);
                    Some((y * w + x, v))
                });
                for slot in pip_by_shard.iter().step_by(PAD) {
                    pip_tests.fetch_add(slot.load(Ordering::Relaxed), Ordering::Relaxed);
                }
                let t0 = Instant::now();
                shards.merge_into(&fbo, self.workers);
                stats.shard_merge += t0.elapsed();
                pool.release_shards(shards);
            } else {
                parallel_ranges(end - start, self.workers, |s, e| {
                    let mut local_pip = 0u64;
                    for i in (start + s)..(start + e) {
                        if !preds.is_empty() && !passes(points, i, preds) {
                            continue;
                        }
                        let p = points.point(i);
                        let Some((x, y)) = vp.pixel_of(p) else {
                            continue;
                        };
                        if boundary.is_boundary(x, y) {
                            local_pip +=
                                join_point(index, polys, p, i, agg_attr, points, &counts, &sums);
                        } else {
                            let v = agg_attr.map_or(0.0, |a| points.attr(a)[i]);
                            fbo.blend_add(x, y, v);
                        }
                    }
                    pip_tests.fetch_add(local_pip, Ordering::Relaxed);
                });
            }
            start = end;
        }
        stats.point_stage = point_stage0.elapsed();
        if points.is_empty() {
            stats.batches = 1;
        }

        // Step 3: polygon pass, discarding boundary fragments. Spans keep
        // the scan sequential; the boundary test stays per pixel.
        let polygon_stage0 = Instant::now();
        let tri_block = block_for(tris.len(), self.workers);
        parallel_dynamic(tris.len(), self.workers, tri_block, |ti| {
            let t = &tris[ti];
            let a = vp.to_screen(t.a);
            let b = vp.to_screen(t.b);
            let c = vp.to_screen(t.c);
            let id = t.poly_id as usize;
            let mut frags = 0u64;
            let mut cnt_acc = 0u64;
            let mut sum_acc = 0f64;
            rasterize_triangle_spans([a, b, c], w, h, |y, x0, x1| {
                frags += (x1 - x0) as u64;
                for x in x0..x1 {
                    if boundary.is_boundary(x, y) {
                        continue; // discarded: handled exactly in step 2
                    }
                    let cnt = fbo.count_at(x, y);
                    if cnt > 0 {
                        cnt_acc += cnt as u64;
                        let s = fbo.sum_at(x, y);
                        if s != 0.0 {
                            sum_acc += s as f64;
                        }
                    }
                }
            });
            if cnt_acc > 0 {
                counts.add(id, cnt_acc);
            }
            if sum_acc != 0.0 {
                sums.add(id, sum_acc);
            }
            if frags > 0 {
                fragments.fetch_add(frags, Ordering::Relaxed);
            }
        });
        stats.polygon_stage += polygon_stage0.elapsed();
        stats.passes += 1;
        stats.processing = proc0.elapsed();
        pool.release(fbo);

        device.record_download((nslots * 16) as u64);
        let ts = device.stats();
        stats.upload_bytes = ts.bytes_up;
        stats.download_bytes = ts.bytes_down;
        stats.transfer = device.modelled_transfer_time();
        stats.pip_tests = pip_tests.load(Ordering::Relaxed);
        stats.fragments = fragments.load(Ordering::Relaxed);

        JoinOutput {
            counts: counts.to_vec(),
            sums: sums.to_vec(),
            stats,
        }
    }
}

/// Procedure JoinPoint: index lookup + PIP tests for one point; updates the
/// result arrays for every containing polygon. Returns the number of PIP
/// tests performed.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn join_point(
    index: &GridIndex,
    polys: &[Polygon],
    p: Point,
    row: usize,
    agg_attr: Option<usize>,
    points: &PointTable,
    counts: &AtomicU64Array,
    sums: &AtomicF64Array,
) -> u64 {
    let mut tests = 0u64;
    for &cand in index.candidates(p) {
        let poly = &polys[cand as usize];
        tests += 1;
        if poly.contains(p) {
            counts.add(cand as usize, 1);
            if let Some(a) = agg_attr {
                sums.add(cand as usize, points.attr(a)[row] as f64);
            }
        }
    }
    tests
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::BoundedRasterJoin;
    use raster_data::generators::{nyc_extent, uniform_points, TaxiModel};
    use raster_data::polygons::synthetic_polygons;

    fn simple_polys() -> Vec<Polygon> {
        vec![
            Polygon::from_coords(0, vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]),
            Polygon::from_coords(
                1,
                vec![(10.0, 0.0), (20.0, 0.0), (20.0, 10.0), (10.0, 10.0)],
            ),
        ]
    }

    #[test]
    fn exact_counts_for_boundary_straddling_points() {
        // Points deliberately hugging the shared edge x = 10: the bounded
        // variant at coarse ε may misassign them; accurate must not.
        let mut pts = PointTable::with_capacity(6, &[]);
        pts.push(Point::new(9.99, 5.0), &[]);
        pts.push(Point::new(10.01, 5.0), &[]);
        pts.push(Point::new(9.95, 1.0), &[]);
        pts.push(Point::new(10.05, 9.0), &[]);
        pts.push(Point::new(2.0, 2.0), &[]);
        pts.push(Point::new(18.0, 2.0), &[]);
        // A coarse canvas makes the edge-hugging points land on boundary
        // pixels, forcing the PIP path.
        let join = AccurateRasterJoin {
            workers: 2,
            canvas_dim: 256,
            index_dim: 64,
            ..Default::default()
        };
        let out = join.execute(&pts, &simple_polys(), &Query::count(), &Device::default());
        assert_eq!(out.counts, vec![3, 3]);
        assert!(
            out.stats.pip_tests > 0,
            "boundary points must be PIP tested"
        );
    }

    #[test]
    fn matches_ground_truth_on_random_workload() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(12, &extent, 77);
        let pts = uniform_points(4_000, &extent, 99);
        let out =
            AccurateRasterJoin::new(4).execute(&pts, &polys, &Query::count(), &Device::default());
        // Brute-force ground truth.
        for (pi, poly) in polys.iter().enumerate() {
            let truth = (0..pts.len())
                .filter(|&i| poly.contains(pts.point(i)))
                .count() as u64;
            assert_eq!(out.counts[pi], truth, "polygon {pi}");
        }
    }

    #[test]
    fn sum_aggregate_matches_ground_truth() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(8, &extent, 5);
        let pts = TaxiModel::default().generate(2_000, 3);
        let fare = pts.attr_index("fare").unwrap();
        let out =
            AccurateRasterJoin::new(4).execute(&pts, &polys, &Query::sum(fare), &Device::default());
        for (pi, poly) in polys.iter().enumerate() {
            let truth: f64 = (0..pts.len())
                .filter(|&i| poly.contains(pts.point(i)))
                .map(|i| pts.attr(fare)[i] as f64)
                .sum();
            let got = out.sums[pi];
            assert!(
                (got - truth).abs() <= 1e-3 * truth.abs().max(1.0),
                "polygon {pi}: got {got}, truth {truth}"
            );
        }
    }

    #[test]
    fn fewer_pip_tests_than_index_join() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(16, &extent, 21);
        let pts = uniform_points(5_000, &extent, 22);
        let acc =
            AccurateRasterJoin::new(2).execute(&pts, &polys, &Query::count(), &Device::default());
        let base = crate::index_join::IndexJoin::gpu(2).execute(
            &pts,
            &polys,
            &Query::count(),
            &Device::default(),
        );
        assert_eq!(acc.counts, base.counts, "both are exact");
        assert!(
            acc.stats.pip_tests < base.stats.pip_tests / 2,
            "accurate ({}) must do far fewer PIP tests than the baseline ({})",
            acc.stats.pip_tests,
            base.stats.pip_tests
        );
    }

    #[test]
    fn agrees_with_bounded_when_epsilon_is_tiny() {
        // With points far from all boundaries both variants are exact.
        let mut pts = PointTable::with_capacity(3, &[]);
        pts.push(Point::new(5.0, 5.0), &[]);
        pts.push(Point::new(15.0, 5.0), &[]);
        pts.push(Point::new(15.2, 4.8), &[]);
        let polys = simple_polys();
        let acc =
            AccurateRasterJoin::new(1).execute(&pts, &polys, &Query::count(), &Device::default());
        let bnd = BoundedRasterJoin::new(1).execute(
            &pts,
            &polys,
            &Query::count().with_epsilon(0.05),
            &Device::default(),
        );
        assert_eq!(acc.counts, bnd.counts);
    }

    #[test]
    fn predicates_apply_before_pip_path_too() {
        use raster_data::filter::{CmpOp, Predicate};
        let mut pts = PointTable::with_capacity(2, &["v"]);
        pts.push(Point::new(9.999, 5.0), &[1.0]); // on boundary pixel
        pts.push(Point::new(2.0, 2.0), &[1.0]); // interior
        let q = Query::count().with_predicates(vec![Predicate::new(0, CmpOp::Gt, 2.0)]);
        let out = AccurateRasterJoin::new(1).execute(&pts, &simple_polys(), &q, &Device::default());
        assert_eq!(out.counts, vec![0, 0]);
    }

    #[test]
    fn thick_outline_fallback_gives_identical_results() {
        // §6.1: the non-NVIDIA fallback must be a drop-in replacement —
        // same exact results AND the same boundary coverage, hence the
        // same PIP-test count.
        let extent = nyc_extent();
        let polys = synthetic_polygons(10, &extent, 88);
        let pts = uniform_points(4_000, &extent, 89);
        let dev = Device::default();
        let dda = AccurateRasterJoin {
            conservative: ConservativeMode::Dda,
            ..Default::default()
        }
        .execute(&pts, &polys, &Query::count(), &dev);
        let thick = AccurateRasterJoin {
            conservative: ConservativeMode::ThickOutline,
            ..Default::default()
        }
        .execute(&pts, &polys, &Query::count(), &dev);
        assert_eq!(dda.counts, thick.counts);
        assert_eq!(dda.stats.pip_tests, thick.stats.pip_tests);
    }

    /// The sharded interior blend is exact: identical counts to the
    /// atomic path AND to brute force, boundary PIP handling included.
    #[test]
    fn sharded_blend_stays_exact() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(8, &extent, 71);
        // Dense enough to exceed the shard gate on a 128² canvas.
        let pts = uniform_points(40_000, &extent, 72);
        let base = AccurateRasterJoin {
            workers: 4,
            canvas_dim: 128,
            index_dim: 64,
            config: raster_gpu::RasterConfig::naive(),
            ..Default::default()
        };
        let sharded = AccurateRasterJoin {
            config: raster_gpu::RasterConfig::default(),
            ..base
        };
        let dev = Device::default();
        let a = base.execute(&pts, &polys, &Query::count(), &dev);
        let b = sharded.execute(&pts, &polys, &Query::count(), &dev);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.stats.pip_tests, b.stats.pip_tests);
        assert_eq!(a.stats.shard_merge, std::time::Duration::ZERO);
        assert!(b.stats.shard_merge > std::time::Duration::ZERO);
        for (pi, poly) in polys.iter().enumerate() {
            let truth = (0..pts.len())
                .filter(|&i| poly.contains(pts.point(i)))
                .count() as u64;
            assert_eq!(b.counts[pi], truth, "polygon {pi}");
        }
    }

    /// Prepare-once chunked execution (the streaming scan's shape) is
    /// exact: identical counts to one-shot execution, with the polygon
    /// side prepared a single time.
    #[test]
    fn prepared_chunked_execution_matches_one_shot() {
        let extent = nyc_extent();
        let polys = synthetic_polygons(8, &extent, 51);
        let pts = uniform_points(6_000, &extent, 52);
        let dev = Device::default();
        let join = AccurateRasterJoin::new(4);
        let one = join.execute(&pts, &polys, &Query::count(), &dev);
        let prepared = join.prepare(&polys, &dev);
        let mut merged = vec![0u64; one.counts.len()];
        for start in (0..pts.len()).step_by(1_700) {
            let chunk = pts.slice(start, (start + 1_700).min(pts.len()));
            let out = join.execute_prepared(&prepared, &chunk, &Query::count(), &dev);
            for (m, c) in merged.iter_mut().zip(&out.counts) {
                *m += c;
            }
        }
        assert_eq!(merged, one.counts);
        assert!(prepared.outline_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn empty_polygon_set() {
        let pts = uniform_points(10, &nyc_extent(), 0);
        let out =
            AccurateRasterJoin::new(1).execute(&pts, &[], &Query::count(), &Device::default());
        assert!(out.counts.is_empty());
    }
}
