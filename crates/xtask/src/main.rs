#![forbid(unsafe_code)]
//! `cargo run -p xtask -- lint` — the repo-invariant lint pass.
//!
//! Clippy and rustc enforce language rules; this tool enforces *this
//! repo's* rules — the invariants the module docs promise in prose,
//! machine-checked (see `crates/xtask/src/lint.rs` for the rule table
//! and `docs/INVARIANTS.md` for the full inventory):
//!
//! * every `unsafe` block lives in an allowlisted module and carries a
//!   `// SAFETY:` comment;
//! * crates that need no unsafe say so (`#![forbid(unsafe_code)]`);
//!   `raster-gpu`, which keeps unsafe, denies implicit unsafe ops;
//! * decode/read paths never panic on untrusted bytes;
//! * result-affecting code never reads the clock.
//!
//! Exits 0 on a clean tree, 1 with one line per violation otherwise.
//! `--root <path>` lints a different tree (CI uses it to prove the lint
//! *fails* on a seeded violation).

mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> PathBuf {
    // The manifest dir is compiled in, so the lint finds its tree no
    // matter where cargo was invoked from.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = find_workspace_root();
    let mut cmd = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "lint" if cmd.is_none() => cmd = Some("lint"),
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }
    match cmd {
        Some("lint") => run_lint(&root),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--root <workspace>]");
    ExitCode::FAILURE
}

fn run_lint(root: &std::path::Path) -> ExitCode {
    let violations = match lint::lint_tree(root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if violations.is_empty() {
        println!("xtask lint: clean ({} invariant rules)", 8);
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    println!("xtask lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real tree must lint clean — this makes `cargo test` itself a
    /// lint gate, independent of the CI step.
    #[test]
    fn repo_tree_is_lint_clean() {
        let root = find_workspace_root();
        let violations = lint::lint_tree(&root).expect("scan failed");
        assert!(
            violations.is_empty(),
            "repo lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
