//! The lint engine: a token scanner enforcing repo invariants that
//! clippy cannot express because they are *policy*, not syntax.
//!
//! The scanner strips comments and string literals (tracking `SAFETY:`
//! markers and `#[cfg(test)]` regions by brace depth), then applies
//! path-scoped rules:
//!
//! | rule              | invariant                                           |
//! |-------------------|-----------------------------------------------------|
//! | `unsafe-module`   | `unsafe` appears only in [`UNSAFE_ALLOWLIST`] files |
//! | `unsafe-safety`   | every `unsafe` token carries a contiguous           |
//! |                   | `// SAFETY:` comment directly above (or inline)     |
//! | `forbid-unsafe`   | crates needing no unsafe say so with                |
//! |                   | `#![forbid(unsafe_code)]` at every crate root       |
//! | `deny-unsafe-op`  | crates keeping unsafe carry                         |
//! |                   | `#![deny(unsafe_op_in_unsafe_fn)]`                  |
//! | `no-panic-decode` | decode/read paths ([`NO_PANIC_PATHS`]) never        |
//! |                   | `unwrap`/`expect`/`panic!` — corrupted bytes must   |
//! |                   | surface as typed `FormatError`s                     |
//! | `no-clock-result` | result-affecting code ([`NO_CLOCK_PATHS`]) never    |
//! |                   | touches `Instant`/`SystemTime` — the `stream.rs`    |
//! |                   | determinism rule, mechanized                        |
//! | `catch-unwind-containment` | first-party `catch_unwind` lives only in   |
//! |                   | the panic-containment module                        |
//! |                   | ([`CATCH_UNWIND_ALLOWLIST`])                        |
//! | `no-join-expect`  | thread joins in `raster-join`                       |
//! |                   | ([`NO_JOIN_EXPECT_PATHS`]) never `.expect()` — a    |
//! |                   | panicked pool thread must surface as a typed        |
//! |                   | `StreamError::WorkerPanicked`, not abort the scan   |
//!
//! `#[cfg(test)]` regions are exempt from the panic and clock rules
//! (tests may time things and unwrap freely) but **not** from the unsafe
//! rules: unsafe test code still wants an audit trail.

use std::fs;
use std::io;
use std::path::Path;

/// Files allowed to contain `unsafe` at all. Every block still needs its
/// own `// SAFETY:` comment; this list only bounds *where* unsafe may
/// live so a new block elsewhere fails loudly in review.
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/raster-gpu/src/bin.rs",
    "crates/raster-gpu/src/framebuffer.rs",
];

/// Crate roots that must declare `#![forbid(unsafe_code)]`: every crate
/// (and binary target — each is its own crate root) that needs no unsafe.
/// A missing file is itself a violation, so renames can't silently drop
/// coverage.
pub const FORBID_UNSAFE_ROOTS: &[&str] = &[
    "src/lib.rs",
    "crates/raster-data/src/lib.rs",
    "crates/raster-geom/src/lib.rs",
    "crates/raster-index/src/lib.rs",
    "crates/raster-join/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/bench/src/bin/bench_binning.rs",
    "crates/bench/src/bin/bench_check.rs",
    "crates/bench/src/bin/bench_planner.rs",
    "crates/bench/src/bin/bench_stream.rs",
    "crates/bench/src/bin/repro.rs",
    "crates/bench/src/bin/rjquery.rs",
    "crates/checker/src/lib.rs",
    "crates/checker/src/bin/modelcheck.rs",
    "crates/xtask/src/main.rs",
];

/// Crate roots that keep unsafe and must therefore make every unsafe
/// operation explicit inside `unsafe fn` bodies.
pub const DENY_UNSAFE_OP_ROOTS: &[&str] = &["crates/raster-gpu/src/lib.rs"];

/// Decode/read paths: bytes from disk are untrusted, so these files must
/// return typed `FormatError`s instead of panicking.
pub const NO_PANIC_PATHS: &[&str] = &[
    "crates/raster-data/src/codec.rs",
    "crates/raster-data/src/disk.rs",
];

/// Result-affecting code: wall-clock reads here could leak timing into
/// query results, breaking the bitwise-determinism contract. Prefix
/// matches (a trailing `/` scopes a whole directory).
pub const NO_CLOCK_PATHS: &[&str] = &[
    "crates/raster-geom/src/",
    "crates/raster-index/src/",
    "crates/raster-data/src/codec.rs",
    "crates/raster-gpu/src/framebuffer.rs",
    "crates/raster-gpu/src/bin.rs",
    "crates/raster-gpu/src/raster.rs",
    "crates/raster-gpu/src/viewport.rs",
    "crates/raster-join/src/query.rs",
];

/// The one first-party module allowed to call `catch_unwind`: the
/// streaming pool's panic containment. Keeping the allowlist at exactly
/// one file is what makes "every contained panic becomes a typed error"
/// auditable — a second catch site elsewhere could swallow panics
/// without the classification discipline. Vendored third-party code
/// (`vendor/`) is out of scope for this policy.
pub const CATCH_UNWIND_ALLOWLIST: &[&str] = &["crates/raster-join/src/containment.rs"];

/// Paths where `.expect()` on a thread-join result is banned: the
/// streaming operators must propagate worker panics as
/// `StreamError::WorkerPanicked`, never abort mid-scan. Prefix matches
/// like [`NO_CLOCK_PATHS`].
pub const NO_JOIN_EXPECT_PATHS: &[&str] = &["crates/raster-join/src/"];

/// How far above an `unsafe` token the contiguous `// SAFETY:` comment
/// block may start.
const SAFETY_WINDOW: usize = 12;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One source line after comment/string stripping.
#[derive(Debug, Default, Clone)]
struct Line {
    /// Code with comments removed and string/char literal *contents*
    /// blanked (delimiters kept), so token searches can't match inside
    /// literals.
    code: String,
    /// `true` when a comment on this line contains `SAFETY:`.
    safety: bool,
    /// `true` when the line holds only comment/whitespace.
    comment_only: bool,
}

/// Split source into per-line code/comment views. Handles nested block
/// comments, line comments, string/char/byte literals, raw strings, and
/// lifetimes. This is a scanner, not a parser: pathological token streams
/// (e.g. a brace inside a macro-generated string passed through
/// `concat!`) could in principle confuse it, but plain rustfmt'd code —
/// which CI enforces — cannot.
fn split_lines(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut cur = Line::default();
    let mut had_comment = false;
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut block_depth = 0usize;
    let n = bytes.len();

    let flush = |cur: &mut Line, had_comment: &mut bool, out: &mut Vec<Line>| {
        cur.comment_only = cur.code.trim().is_empty() && *had_comment;
        out.push(std::mem::take(cur));
        *had_comment = false;
    };

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            flush(&mut cur, &mut had_comment, &mut out);
            i += 1;
            continue;
        }
        if block_depth > 0 {
            had_comment = true;
            if c == '*' && i + 1 < n && bytes[i + 1] == '/' {
                block_depth -= 1;
                i += 2;
                continue;
            }
            if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
                block_depth += 1;
                i += 2;
                continue;
            }
            if bytes[i..]
                .iter()
                .take(7)
                .collect::<String>()
                .starts_with("SAFETY:")
            {
                cur.safety = true;
            }
            i += 1;
            continue;
        }
        match c {
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment: scan it for SAFETY:, then drop it.
                had_comment = true;
                let rest: String = bytes[i..].iter().take_while(|&&b| b != '\n').collect();
                if rest.contains("SAFETY:") {
                    cur.safety = true;
                }
                i += rest.chars().count();
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                had_comment = true;
                block_depth += 1;
                i += 2;
            }
            '"' => {
                cur.code.push('"');
                i += 1;
                while i < n && bytes[i] != '"' {
                    if bytes[i] == '\\' {
                        i += 2; // skip the escaped char (incl. \")
                        continue;
                    }
                    if bytes[i] == '\n' {
                        flush(&mut cur, &mut had_comment, &mut out);
                    }
                    i += 1;
                }
                cur.code.push('"');
                i += 1; // closing quote
            }
            'r' if i + 1 < n && (bytes[i + 1] == '"' || bytes[i + 1] == '#') => {
                // Possible raw string r"…" / r#"…"#.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < n && bytes[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && bytes[j] == '"' {
                    cur.code.push('"');
                    j += 1;
                    'raw: while j < n {
                        if bytes[j] == '\n' {
                            flush(&mut cur, &mut had_comment, &mut out);
                        }
                        if bytes[j] == '"' {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while k < n && bytes[k] == '#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    cur.code.push('"');
                    i = j;
                } else {
                    cur.code.push('r');
                    i += 1;
                }
            }
            '\'' => {
                // Char literal ('a', '\n') vs lifetime ('a). A literal
                // closes with ' one or two (escaped) chars later.
                let is_escaped = i + 1 < n && bytes[i + 1] == '\\';
                let closes_short = i + 2 < n && bytes[i + 2] == '\'';
                if is_escaped || closes_short {
                    cur.code.push_str("''");
                    let mut j = i + 1;
                    if bytes[j] == '\\' {
                        j += 1;
                    }
                    while j < n && bytes[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                } else {
                    cur.code.push('\'');
                    i += 1;
                }
            }
            _ => {
                cur.code.push(c);
                i += 1;
            }
        }
    }
    if !cur.code.is_empty() || had_comment {
        flush(&mut cur, &mut had_comment, &mut out);
    }
    out
}

/// Mark which lines sit inside `#[cfg(test)]` items, by brace depth.
fn test_regions(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth = 0i64;
    let mut pending_cfg = false;
    let mut region_floor: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if region_floor.is_some() {
            in_test[idx] = true;
        }
        if region_floor.is_none() && code.contains("#[cfg(test)]") {
            pending_cfg = true;
            in_test[idx] = true;
        } else if pending_cfg && region_floor.is_none() {
            in_test[idx] = true;
            if code.contains('{') {
                region_floor = Some(depth);
                pending_cfg = false;
            } else if code.trim_end().ends_with(';') {
                // `#[cfg(test)] use …;` — single-item scope.
                pending_cfg = false;
            }
        }
        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(floor) = region_floor {
            if depth <= floor {
                region_floor = None;
            }
        }
    }
    in_test
}

/// Word-boundary search: `word` not embedded in a larger identifier.
fn find_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + word.len();
        let after = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before && after {
            return true;
        }
        start = at + 1;
    }
    false
}

fn path_matches(rel: &str, pattern: &str) -> bool {
    if let Some(dir) = pattern.strip_suffix('/') {
        rel.starts_with(dir)
    } else {
        rel == pattern
    }
}

/// Lint one file's source. Pure — the unit tests feed it fixtures.
pub fn lint_source(rel: &str, text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let lines = split_lines(text);
    let in_test = test_regions(&lines);

    let unsafe_allowed = UNSAFE_ALLOWLIST.contains(&rel);
    let no_panic = NO_PANIC_PATHS.iter().any(|p| path_matches(rel, p));
    let no_clock = NO_CLOCK_PATHS.iter().any(|p| path_matches(rel, p));
    let catch_allowed = rel.starts_with("vendor/") || CATCH_UNWIND_ALLOWLIST.contains(&rel);
    let no_join_expect = NO_JOIN_EXPECT_PATHS.iter().any(|p| path_matches(rel, p));
    let needs_forbid = FORBID_UNSAFE_ROOTS.contains(&rel);
    let needs_deny_op = DENY_UNSAFE_OP_ROOTS.contains(&rel);

    let mut has_forbid = false;
    let mut has_deny_op = false;

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        if code.contains("#![forbid(unsafe_code)]") {
            has_forbid = true;
        }
        if code.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
            has_deny_op = true;
        }

        if find_word(code, "unsafe") {
            if !unsafe_allowed {
                out.push(Violation {
                    file: rel.into(),
                    line: lineno,
                    rule: "unsafe-module",
                    message: "`unsafe` outside the allowlisted modules \
                              (crates/xtask/src/lint.rs UNSAFE_ALLOWLIST)"
                        .into(),
                });
            } else if !safety_documented(&lines, idx) {
                out.push(Violation {
                    file: rel.into(),
                    line: lineno,
                    rule: "unsafe-safety",
                    message: "`unsafe` without a contiguous `// SAFETY:` comment \
                              directly above"
                        .into(),
                });
            }
        }

        if no_panic && !in_test[idx] {
            for pat in [
                ".unwrap(",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
                "unimplemented!(",
            ] {
                if code.contains(pat) {
                    out.push(Violation {
                        file: rel.into(),
                        line: lineno,
                        rule: "no-panic-decode",
                        message: format!(
                            "`{pat}…` in a decode/read path — corrupted bytes must \
                             surface as typed FormatError, never a panic"
                        ),
                    });
                }
            }
        }

        if !catch_allowed && find_word(code, "catch_unwind") {
            out.push(Violation {
                file: rel.into(),
                line: lineno,
                rule: "catch-unwind-containment",
                message: "`catch_unwind` outside the panic-containment module \
                          (crates/xtask/src/lint.rs CATCH_UNWIND_ALLOWLIST) — \
                          contain panics in raster-join/src/containment.rs so \
                          every one becomes a typed error"
                    .into(),
            });
        }

        if no_join_expect && !in_test[idx] {
            let continued = code.trim_start().starts_with(".expect(")
                && prev_code_line_ends_with(&lines, idx, ".join()");
            if code.contains("join().expect(") || continued {
                out.push(Violation {
                    file: rel.into(),
                    line: lineno,
                    rule: "no-join-expect",
                    message: "`.expect()` on a thread join — a panicked pool \
                              thread must surface as StreamError::WorkerPanicked, \
                              never abort the scan"
                        .into(),
                });
            }
        }

        if no_clock
            && !in_test[idx]
            && (find_word(code, "Instant") || find_word(code, "SystemTime"))
        {
            out.push(Violation {
                file: rel.into(),
                line: lineno,
                rule: "no-clock-result",
                message: "wall-clock read in result-affecting code — timing must \
                          never influence query results (stream.rs determinism rule)"
                    .into(),
            });
        }
    }

    if needs_forbid && !has_forbid {
        out.push(Violation {
            file: rel.into(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root must declare #![forbid(unsafe_code)]".into(),
        });
    }
    if needs_deny_op && !has_deny_op {
        out.push(Violation {
            file: rel.into(),
            line: 1,
            rule: "deny-unsafe-op",
            message: "crate root keeps unsafe and must declare \
                      #![deny(unsafe_op_in_unsafe_fn)]"
                .into(),
        });
    }
    out
}

/// Does the nearest preceding line with real code end with `suffix`?
/// (Catches rustfmt splitting `handle.join()\n    .expect(…)`.)
fn prev_code_line_ends_with(lines: &[Line], idx: usize, suffix: &str) -> bool {
    lines[..idx]
        .iter()
        .rev()
        .find(|l| !l.code.trim().is_empty())
        .is_some_and(|l| l.code.trim_end().ends_with(suffix))
}

/// Is there a contiguous `// SAFETY:` comment block directly above
/// `idx` (attributes and blank lines allowed between), or inline on the
/// same line?
fn safety_documented(lines: &[Line], idx: usize) -> bool {
    if lines[idx].safety {
        return true;
    }
    for back in 1..=SAFETY_WINDOW.min(idx) {
        let line = &lines[idx - back];
        let trimmed = line.code.trim();
        let is_gap = trimmed.is_empty() || trimmed.starts_with("#[") || trimmed.starts_with("#![");
        if line.safety {
            return true;
        }
        if !line.comment_only && !is_gap {
            return false; // hit real code before any SAFETY comment
        }
    }
    false
}

/// Recursively collect `.rs` files under `root`, skipping build output.
fn walk(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole tree rooted at the workspace root. Scans `src/`,
/// `crates/` and `vendor/`.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for top in ["src", "crates", "vendor"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut out = Vec::new();
    let mut seen_roots: Vec<&str> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if let Some(r) = FORBID_UNSAFE_ROOTS
            .iter()
            .chain(DENY_UNSAFE_OP_ROOTS)
            .find(|r| **r == rel)
        {
            seen_roots.push(r);
        }
        let text = fs::read_to_string(path)?;
        out.extend(lint_source(&rel, &text));
    }

    // A configured crate root that no longer exists is a silent coverage
    // hole — fail loudly so the allowlist tracks renames.
    for r in FORBID_UNSAFE_ROOTS.iter().chain(DENY_UNSAFE_OP_ROOTS) {
        if !seen_roots.contains(r) {
            out.push(Violation {
                file: (*r).into(),
                line: 0,
                rule: "missing-root",
                message: "configured crate root not found — update the lint \
                          config in crates/xtask/src/lint.rs"
                    .into(),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GPU_BIN: &str = "crates/raster-gpu/src/bin.rs";

    #[test]
    fn safety_comment_directly_above_passes() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: caller guarantees exclusivity.\n    unsafe { p.write(0) };\n}\n";
        assert!(lint_source(GPU_BIN, src).is_empty());
    }

    #[test]
    fn unsafe_without_safety_comment_fails() {
        let src = "fn f(p: *mut u8) {\n    unsafe { p.write(0) };\n}\n";
        let v = lint_source(GPU_BIN, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-safety");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn safety_comment_does_not_leak_past_code() {
        // A SAFETY comment above *other code* must not license a later
        // unsafe block.
        let src = "// SAFETY: for the first block only.\nlet a = 1;\nunsafe { q.write(a) };\n";
        let v = lint_source(GPU_BIN, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unsafe-safety");
    }

    #[test]
    fn unsafe_outside_allowlist_fails_even_with_safety() {
        let src = "// SAFETY: documented but in the wrong crate.\nunsafe { core::hint::unreachable_unchecked() }\n";
        let v = lint_source("crates/raster-join/src/stream.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-module");
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let src = "// this code is unsafe in spirit\nlet s = \"unsafe { }\";\nlet t = 'u';\n";
        assert!(lint_source("crates/raster-join/src/stream.rs", src).is_empty());
    }

    #[test]
    fn unsafe_suffix_identifiers_are_not_matched() {
        let src = "#![forbid(unsafe_code)]\nfn unsafe_code_free() {}\n";
        assert!(lint_source("crates/raster-join/src/stream.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_decode_path_fails() {
        let src =
            "fn decode(b: &[u8]) -> u32 {\n    u32::from_le_bytes(b.try_into().unwrap())\n}\n";
        let v = lint_source("crates/raster-data/src/codec.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-panic-decode");
    }

    #[test]
    fn unwrap_or_in_decode_path_is_fine() {
        let src = "fn decode(b: Option<u32>) -> u32 {\n    b.unwrap_or(0).max(b.unwrap_or_default())\n}\n";
        assert!(lint_source("crates/raster-data/src/codec.rs", src).is_empty());
    }

    #[test]
    fn panic_in_decode_test_module_is_fine() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(\"x\"); }\n}\n";
        assert!(lint_source("crates/raster-data/src/disk.rs", src).is_empty());
    }

    #[test]
    fn instant_in_result_affecting_code_fails() {
        let src = "use std::time::Instant;\n";
        let v = lint_source("crates/raster-geom/src/polygon.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-clock-result");
    }

    #[test]
    fn instant_in_stats_code_is_fine() {
        let src = "use std::time::Instant;\n";
        assert!(lint_source("crates/raster-gpu/src/exec.rs", src).is_empty());
    }

    #[test]
    fn missing_forbid_attribute_fails() {
        let v = lint_source("crates/raster-geom/src/lib.rs", "//! docs\npub fn f() {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "forbid-unsafe");
    }

    #[test]
    fn forbid_attribute_in_comment_does_not_count() {
        let v = lint_source(
            "crates/raster-geom/src/lib.rs",
            "//! says #![forbid(unsafe_code)] in docs only\npub fn f() {}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "forbid-unsafe");
    }

    #[test]
    fn deny_unsafe_op_required_in_gpu_root() {
        let v = lint_source("crates/raster-gpu/src/lib.rs", "pub mod framebuffer;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "deny-unsafe-op");
    }

    #[test]
    fn raw_strings_and_char_literals_do_not_confuse_the_scanner() {
        let src = "let a = r#\"unsafe panic!( \"#;\nlet b = '\\'';\nlet c: &'static str = \"x\";\n";
        assert!(lint_source("crates/raster-data/src/codec.rs", src).is_empty());
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner unsafe */ still comment panic!( */\nfn ok() {}\n";
        assert!(lint_source("crates/raster-data/src/codec.rs", src).is_empty());
    }

    #[test]
    fn catch_unwind_outside_containment_fails() {
        let src = "use std::panic::catch_unwind;\nfn f() { let _ = catch_unwind(|| 1); }\n";
        let v = lint_source("crates/raster-join/src/stream.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "catch-unwind-containment"));
    }

    #[test]
    fn catch_unwind_in_containment_and_vendor_is_fine() {
        let src = "use std::panic::catch_unwind;\n";
        assert!(lint_source("crates/raster-join/src/containment.rs", src).is_empty());
        assert!(lint_source("vendor/crossbeam/src/lib.rs", src).is_empty());
    }

    #[test]
    fn join_expect_in_raster_join_fails() {
        let src =
            "fn f(h: std::thread::JoinHandle<()>) { h.join().expect(\"worker panicked\"); }\n";
        let v = lint_source("crates/raster-join/src/stream.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-join-expect");
    }

    #[test]
    fn join_expect_split_across_lines_fails() {
        let src = "fn f(h: std::thread::JoinHandle<()>) {\n    h.join()\n        .expect(\"worker panicked\");\n}\n";
        let v = lint_source("crates/raster-join/src/multi.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-join-expect");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn join_expect_in_tests_or_other_crates_is_fine() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t(h: std::thread::JoinHandle<()>) { h.join().expect(\"x\"); }\n}\n";
        assert!(lint_source("crates/raster-join/src/stream.rs", test_src).is_empty());
        let src = "fn f(h: std::thread::JoinHandle<()>) { h.join().expect(\"x\"); }\n";
        assert!(lint_source("crates/raster-gpu/src/exec.rs", src).is_empty());
    }

    #[test]
    fn test_region_tracking_ends_at_closing_brace() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\nfn after(b: Option<u8>) { b.unwrap(); }\n";
        let v = lint_source("crates/raster-data/src/disk.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
    }
}
