//! Hardened read-path behavior under deterministic fault injection.
//!
//! These tests arm `disk.*` / `codec.*` failpoints, so they live in their
//! own integration-test process: the fault trigger state is global to a
//! process, and arming `disk.read_at` while the library's own unit tests
//! scan files in parallel would poison them. Every test here holds the
//! [`faults::install`] guard — including the ones that garble real files
//! instead of injecting — which also serializes them against each other.

use raster_data::disk::{
    write_table, write_table_compressed, write_table_compressed_v2, ChunkedReader,
};
use raster_data::faults;
use raster_data::table::PointTable;
use raster_geom::Point;
use std::io;
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("raster-data-faults-{}-{name}", std::process::id()));
    p
}

fn sample(n: usize) -> PointTable {
    let mut t = PointTable::with_capacity(n, &["a", "bb"]);
    for i in 0..n {
        t.push(
            Point::new(i as f64 * 1.5, -(i as f64)),
            &[i as f32, i as f32 * 0.5],
        );
    }
    t
}

fn scan_all(path: &Path) -> io::Result<PointTable> {
    let mut r = ChunkedReader::open(path, 100)?;
    let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
    while let Some(c) = r.next_chunk()? {
        whole.extend(&c);
    }
    Ok(whole)
}

#[test]
fn retry_absorbs_a_transient_interrupted_read() {
    let path = tmp("retry-interrupted.bin");
    let t = sample(500);
    write_table(&path, &t).unwrap();
    let _g = faults::install("disk.read_at@2=interrupted").unwrap();
    let mut r = ChunkedReader::open(&path, 100).unwrap();
    let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
    while let Some(c) = r.next_chunk().unwrap() {
        whole.extend(&c);
    }
    assert_eq!(whole, t, "a retried scan must stay bitwise identical");
    assert_eq!(r.recovery().io_retries, 1);
    assert_eq!(r.recovery().block_rereads, 0);
    assert!(!r.recovery().dir_rebuilt);
    std::fs::remove_file(&path).ok();
}

#[test]
fn short_read_while_growing_is_retried_too() {
    let path = tmp("retry-eof.bin");
    let t = sample(300);
    write_table_compressed(&path, &t, 128).unwrap();
    let _g = faults::install("disk.read_at@3=eof").unwrap();
    let got = scan_all(&path).unwrap();
    assert_eq!(got, t);
    std::fs::remove_file(&path).ok();
}

#[test]
fn persistent_interrupted_exhausts_the_retry_budget() {
    let path = tmp("retry-exhausted.bin");
    let t = sample(200);
    write_table(&path, &t).unwrap();
    let _g = faults::install("disk.read_at%1=interrupted").unwrap();
    let err = scan_all(&path).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::Interrupted);
    assert!(err.to_string().contains("injected fault"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_fault_surfaces_as_its_io_kind() {
    let path = tmp("open-notfound.bin");
    write_table(&path, &sample(10)).unwrap();
    let _g = faults::install("disk.open@1=notfound").unwrap();
    let err = ChunkedReader::open(&path, 10).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::NotFound);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_block_recovers_with_one_reread() {
    for (name, v3) in [("reread-v3.bin", true), ("reread-v2.bin", false)] {
        let path = tmp(name);
        let t = sample(400);
        if v3 {
            write_table_compressed(&path, &t, 128).unwrap();
        } else {
            write_table_compressed_v2(&path, &t, 128).unwrap();
        }
        let _g = faults::install("disk.block@1=corrupt").unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
        while let Some(c) = r.next_chunk().unwrap() {
            whole.extend(&c);
        }
        assert_eq!(whole, t, "a torn-read recovery must stay bitwise identical");
        assert_eq!(r.recovery().block_rereads, 1);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn persistent_block_corruption_is_a_typed_error() {
    let path = tmp("reread-fails.bin");
    let t = sample(400);
    write_table_compressed_v2(&path, &t, 128).unwrap();
    let _g = faults::install("disk.block%1=corrupt").unwrap();
    let err = scan_all(&path).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    std::fs::remove_file(&path).ok();
}

#[test]
fn decode_fault_recovers_via_block_reread() {
    // Corruption first detected at decode time takes the same torn-read
    // re-read path as structural block corruption.
    let path = tmp("decode-fault.bin");
    let t = sample(400);
    write_table_compressed_v2(&path, &t, 512).unwrap();
    let _g = faults::install("codec.decode@1=corrupt").unwrap();
    let mut r = ChunkedReader::open(&path, 100).unwrap();
    let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
    while let Some(c) = r.next_chunk().unwrap() {
        whole.extend(&c);
    }
    assert_eq!(whole, t);
    assert_eq!(r.recovery().block_rereads, 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn v1_scans_ignore_the_block_failpoint() {
    // v1 raw columns carry no redundancy, so corruption there would be
    // undetectable; the block failpoint deliberately has no v1 hook and a
    // v1 scan under it must stay clean rather than silently diverge.
    let path = tmp("v1-no-block-site.bin");
    let t = sample(300);
    write_table(&path, &t).unwrap();
    let _g = faults::install("disk.block%1=corrupt").unwrap();
    assert_eq!(scan_all(&path).unwrap(), t);
    assert_eq!(faults::hit_count(faults::DISK_BLOCK), 0);
    std::fs::remove_file(&path).ok();
}

/// Header layout of the `sample` schema: 20 fixed bytes, names `a` (4+1)
/// and `bb` (4+2), then `chunk_rows u64` + `n_chunks u32` = 12 — the v3
/// per-column directory starts at byte 43.
const DIR_OFFSET: usize = 43;

#[test]
fn corrupt_v3_directory_entry_rebuilds_and_matches() {
    let path = tmp("dir-rebuild.bin");
    let t = sample(700);
    write_table_compressed(&path, &t, 256).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // First directory entry -> 0: shorter than its 5-byte header, a
    // typed Corrupt at read_meta.
    bytes[DIR_OFFSET..DIR_OFFSET + 4].copy_from_slice(&0u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let _g = faults::install("").unwrap();
    let mut r = ChunkedReader::open(&path, 100).unwrap();
    assert!(r.recovery().dir_rebuilt);
    let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
    while let Some(c) = r.next_chunk().unwrap() {
        whole.extend(&c);
    }
    assert_eq!(whole, t, "a degraded scan must stay bitwise identical");
    std::fs::remove_file(&path).ok();
}

#[test]
fn overclaiming_v3_directory_entry_rebuilds_and_matches() {
    // A bogus length that stays individually plausible (>= 5, no
    // overflow) passes read_meta and surfaces as Truncated at the size
    // check instead — same rebuild, same bitwise result.
    let path = tmp("dir-overclaim.bin");
    let t = sample(700);
    write_table_compressed(&path, &t, 256).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[DIR_OFFSET..DIR_OFFSET + 4].copy_from_slice(&0x00FF_FFFFu32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let _g = faults::install("").unwrap();
    let mut r = ChunkedReader::open(&path, 100).unwrap();
    assert!(r.recovery().dir_rebuilt);
    let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
    while let Some(c) = r.next_chunk().unwrap() {
        whole.extend(&c);
    }
    assert_eq!(whole, t);
    std::fs::remove_file(&path).ok();
}

#[test]
fn projected_scan_survives_a_rebuilt_directory() {
    let path = tmp("dir-rebuild-projected.bin");
    let t = sample(500);
    write_table_compressed(&path, &t, 128).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[DIR_OFFSET..DIR_OFFSET + 4].copy_from_slice(&3u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let _g = faults::install("").unwrap();
    let mut r = ChunkedReader::open_projected(&path, 100, Some(&[1])).unwrap();
    assert!(r.recovery().dir_rebuilt);
    let mut rows = 0usize;
    while let Some(c) = r.next_chunk().unwrap() {
        assert_eq!(c.attr_count(), 1);
        rows += c.len();
    }
    assert_eq!(rows, 500);
    std::fs::remove_file(&path).ok();
}

#[test]
fn genuinely_truncated_v3_keeps_its_truncation_error() {
    // The rebuild walk runs past EOF on a really-truncated file, so the
    // original typed Truncated error — not a rebuild artifact — wins.
    let path = tmp("dir-truncated.bin");
    let t = sample(700);
    write_table_compressed(&path, &t, 256).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 64]).unwrap();
    let _g = faults::install("").unwrap();
    let err = ChunkedReader::open(&path, 100).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("truncated"), "{err}");
    std::fs::remove_file(&path).ok();
}
