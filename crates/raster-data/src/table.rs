//! The in-memory columnar point table.

use raster_geom::{BBox, Point};

/// A named f32 attribute column (fare, tip, passenger count, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub values: Vec<f32>,
}

/// Columnar storage for a point data set: two coordinate columns plus any
/// number of f32 attribute columns, mirroring the paper's binary column
/// layout (§7.1: "The data is stored as columns on disk and the required
/// columns are loaded into main memory").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointTable {
    xs: Vec<f64>,
    ys: Vec<f64>,
    attrs: Vec<Column>,
}

impl PointTable {
    pub fn new() -> Self {
        PointTable::default()
    }

    /// Pre-allocate for `n` points with the given attribute names.
    pub fn with_capacity(n: usize, attr_names: &[&str]) -> Self {
        PointTable {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            attrs: attr_names
                .iter()
                .map(|&name| Column {
                    name: name.to_string(),
                    values: Vec::with_capacity(n),
                })
                .collect(),
        }
    }

    /// Build a table directly from its columns, taking ownership of the
    /// buffers. This is the bulk path for column-wise sources (the disk
    /// reader decodes each column straight into its final `Vec` instead of
    /// materialising temporaries and re-pushing row-at-a-time, halving the
    /// peak allocation of whole-file loads).
    ///
    /// Panics if the column lengths disagree or the name count does not
    /// match the value-column count.
    pub fn from_columns(
        xs: Vec<f64>,
        ys: Vec<f64>,
        attr_names: &[&str],
        attr_values: Vec<Vec<f32>>,
    ) -> Self {
        assert_eq!(xs.len(), ys.len(), "coordinate column length mismatch");
        assert_eq!(
            attr_names.len(),
            attr_values.len(),
            "attribute arity mismatch"
        );
        let attrs: Vec<Column> = attr_names
            .iter()
            .zip(attr_values)
            .map(|(&name, values)| {
                assert_eq!(values.len(), xs.len(), "column `{name}` length mismatch");
                Column {
                    name: name.to_string(),
                    values,
                }
            })
            .collect();
        PointTable { xs, ys, attrs }
    }

    /// Append one record. `attr_values` must match the column count.
    pub fn push(&mut self, p: Point, attr_values: &[f32]) {
        assert_eq!(
            attr_values.len(),
            self.attrs.len(),
            "attribute arity mismatch"
        );
        self.xs.push(p.x);
        self.ys.push(p.y);
        for (col, &v) in self.attrs.iter_mut().zip(attr_values) {
            col.values.push(v);
        }
    }

    pub fn len(&self) -> usize {
        self.xs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    #[inline]
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    pub fn attr_names(&self) -> Vec<&str> {
        self.attrs.iter().map(|c| c.name.as_str()).collect()
    }

    /// Column values by index.
    pub fn attr(&self, i: usize) -> &[f32] {
        &self.attrs[i].values
    }

    /// Column index by name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|c| c.name == name)
    }

    /// Bounding box of all points.
    pub fn bbox(&self) -> BBox {
        let mut b = BBox::empty();
        for i in 0..self.len() {
            b.expand(self.point(i));
        }
        b
    }

    /// First `n` records (the paper grows query input sizes by adding time
    /// intervals; generators emit records in time order, so a prefix is a
    /// time-range selection).
    pub fn prefix(&self, n: usize) -> PointTable {
        self.slice(0, n.min(self.len()))
    }

    /// Records `[start, end)` as a new table.
    pub fn slice(&self, start: usize, end: usize) -> PointTable {
        assert!(start <= end && end <= self.len());
        PointTable {
            xs: self.xs[start..end].to_vec(),
            ys: self.ys[start..end].to_vec(),
            attrs: self
                .attrs
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    values: c.values[start..end].to_vec(),
                })
                .collect(),
        }
    }

    /// Append all records of `other` (schemas must match).
    pub fn extend(&mut self, other: &PointTable) {
        assert_eq!(self.attr_count(), other.attr_count(), "schema mismatch");
        self.xs.extend_from_slice(&other.xs);
        self.ys.extend_from_slice(&other.ys);
        for (a, b) in self.attrs.iter_mut().zip(&other.attrs) {
            a.values.extend_from_slice(&b.values);
        }
    }

    /// Bytes per record when shipping the positions plus `used_attrs`
    /// attribute columns to the GPU (two f32 coordinates + one f32 per
    /// attribute, the VBO layout of §6.1).
    pub fn point_bytes(used_attrs: usize) -> usize {
        8 + 4 * used_attrs
    }

    /// Total upload size for this table with `used_attrs` attribute columns.
    pub fn upload_bytes(&self, used_attrs: usize) -> u64 {
        (self.len() * Self::point_bytes(used_attrs)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointTable {
        let mut t = PointTable::with_capacity(4, &["fare", "tip"]);
        t.push(Point::new(0.0, 0.0), &[10.0, 1.0]);
        t.push(Point::new(1.0, 2.0), &[20.0, 2.0]);
        t.push(Point::new(-3.0, 5.0), &[30.0, 3.0]);
        t.push(Point::new(4.0, -1.0), &[40.0, 4.0]);
        t
    }

    #[test]
    fn from_columns_matches_push() {
        let pushed = sample();
        let bulk = PointTable::from_columns(
            vec![0.0, 1.0, -3.0, 4.0],
            vec![0.0, 2.0, 5.0, -1.0],
            &["fare", "tip"],
            vec![vec![10.0, 20.0, 30.0, 40.0], vec![1.0, 2.0, 3.0, 4.0]],
        );
        assert_eq!(bulk, pushed);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_columns_rejects_ragged_columns() {
        let _ = PointTable::from_columns(vec![0.0, 1.0], vec![0.0, 1.0], &["a"], vec![vec![1.0]]);
    }

    #[test]
    fn push_and_access() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.point(2), Point::new(-3.0, 5.0));
        assert_eq!(t.attr(0), &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(t.attr_index("tip"), Some(1));
        assert_eq!(t.attr_index("nope"), None);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = PointTable::with_capacity(1, &["a"]);
        t.push(Point::new(0.0, 0.0), &[1.0, 2.0]);
    }

    #[test]
    fn bbox_covers_points() {
        let t = sample();
        let b = t.bbox();
        assert_eq!(b.min, Point::new(-3.0, -1.0));
        assert_eq!(b.max, Point::new(4.0, 5.0));
    }

    #[test]
    fn prefix_and_slice() {
        let t = sample();
        let p = t.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.attr(1), &[1.0, 2.0]);
        let s = t.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), Point::new(1.0, 2.0));
        // Prefix longer than the table clamps.
        assert_eq!(t.prefix(100).len(), 4);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = sample();
        let b = sample();
        a.extend(&b);
        assert_eq!(a.len(), 8);
        assert_eq!(a.attr(0)[4..], [10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn upload_bytes_follow_vbo_layout() {
        let t = sample();
        assert_eq!(PointTable::point_bytes(0), 8);
        assert_eq!(PointTable::point_bytes(3), 20);
        assert_eq!(t.upload_bytes(1), (4 * 12) as u64);
    }
}
