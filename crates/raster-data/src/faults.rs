//! Deterministic fault injection: named failpoints for the streaming
//! I/O and decode pipeline.
//!
//! A long-lived query service survives torn reads, corrupt blocks and
//! panicking workers only if those paths are *testable on demand*. This
//! module provides the trigger layer: every I/O and decode site in
//! `disk.rs` / `codec.rs` and the pool stages of `raster-join::stream`
//! asks [`hit`] whether an injected fault fires at this exact call. The
//! full site list, spec grammar and the retry/degradation behavior each
//! site feeds are documented in `docs/FAULTS.md`.
//!
//! # Determinism
//!
//! Triggers are pure hit-counters — fire on the Nth hit (`site@N=kind`)
//! or on every Kth hit (`site%K=kind`) — with **no wall clock and no
//! RNG**, so a failing run replays exactly from its spec string. Sites
//! on a single thread (each scan has exactly one reader thread touching
//! the `disk.*` sites) hit in a fixed order; the `stream.worker` site is
//! hit from several workers, so *which* worker draws the Nth hit is
//! scheduling-dependent — the chaos invariant (a typed error or
//! bitwise-identical results, never a panic/hang/partial aggregate)
//! holds either way.
//!
//! # Cost when disabled
//!
//! [`hit`] is one `Once` fast-path check plus one relaxed atomic load
//! when no spec is armed — nothing else, no locks, no allocation — so
//! production scans pay effectively nothing for the instrumentation.
//!
//! # Arming
//!
//! * `RJ_FAULTS=<spec>` in the environment arms the process-wide
//!   baseline (parsed once, on the first `hit`); a malformed spec is
//!   reported on stderr and ignored rather than aborting the scan.
//! * [`install`] arms a spec programmatically and returns a guard that
//!   holds a global lock for the guard's lifetime — concurrent tests in
//!   one process serialize on it — and restores the environment baseline
//!   (or disarms) on drop, resetting every hit counter both ways.
//!
//! This module is panic-free and clock-free: its hooks run inside the
//! `no-panic-decode` / `no-clock-result` lint boundaries of `disk.rs`
//! and `codec.rs`.

use crate::codec::FormatError;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock, PoisonError};

/// Positioned data read in `disk.rs` (`ChunkedReader::read_at`): every
/// column, block and directory fetch funnels through it. `interrupted`
/// and `eof` here are absorbed by the reader's bounded retry.
pub const DISK_READ_AT: usize = 0;
/// Table open (`ChunkedReader::open_projected`), before the header read.
pub const DISK_OPEN: usize = 1;
/// A fetched v2/v3 chunk block, after a successful read: the `corrupt`
/// kind flips a byte of the block's first entry header in the scratch
/// buffer — a torn read the re-read fallback can recover from. Not
/// hooked on v1 reads: raw columns carry no redundancy, so corruption
/// there is undetectable by design.
pub const DISK_BLOCK: usize = 2;
/// Column codec decode (`codec::decode_f64s` / `decode_f32s`): the
/// `corrupt` kind yields a typed [`FormatError::Corrupt`].
pub const CODEC_DECODE: usize = 3;
/// The streaming executor's reader thread, before each paced fetch.
pub const STREAM_READER: usize = 4;
/// A streaming pool worker, before each chunk's decode + join; the only
/// site (besides `stream.reader`) where the `panic` kind is honored.
pub const STREAM_WORKER: usize = 5;

/// Site names in site-index order (the spec grammar's left-hand sides).
pub const SITE_NAMES: [&str; 6] = [
    "disk.read_at",
    "disk.open",
    "disk.block",
    "codec.decode",
    "stream.reader",
    "stream.worker",
];

/// Number of failpoint sites.
pub const SITE_COUNT: usize = SITE_NAMES.len();

/// What an armed failpoint injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `io::ErrorKind::Interrupted` — the transient kind the bounded
    /// read retry absorbs.
    Interrupted,
    /// `io::ErrorKind::UnexpectedEof` — a short read, e.g. racing a
    /// concurrent append; also retried.
    Eof,
    /// `io::ErrorKind::NotFound` — a non-transient error (file vanished
    /// mid-scan); never retried, surfaces as a typed error.
    NotFound,
    /// A detectable data defect: a flipped block byte at [`DISK_BLOCK`],
    /// a typed [`FormatError::Corrupt`] elsewhere.
    Corrupt,
    /// A thread panic, honored only at the `stream.*` sites (the
    /// containment layer converts it to a typed error); at `disk.*` /
    /// `codec.*` sites — which must never panic — it degrades to an
    /// ordinary error.
    Panic,
}

impl FaultKind {
    /// The spec-grammar name of this kind (`site@N=<name>`).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Interrupted => "interrupted",
            FaultKind::Eof => "eof",
            FaultKind::NotFound => "notfound",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Panic => "panic",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "interrupted" => Some(FaultKind::Interrupted),
            "eof" => Some(FaultKind::Eof),
            "notfound" => Some(FaultKind::NotFound),
            "corrupt" => Some(FaultKind::Corrupt),
            "panic" => Some(FaultKind::Panic),
            _ => None,
        }
    }
}

/// One parsed spec clause: fire `kind` at `site` on the `param`-th hit
/// (`EveryK`: on every `param`-th hit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Clause {
    site: usize,
    every: bool,
    param: u32,
    kind: FaultKind,
}

/// One failpoint site: a hit counter plus its packed trigger.
struct Site {
    hits: AtomicU64,
    /// 0 = disarmed; else `param << 32 | every << 8 | (kind + 1)`.
    trig: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const SITE_INIT: Site = Site {
    hits: AtomicU64::new(0),
    trig: AtomicU64::new(0),
};
static SITES: [Site; SITE_COUNT] = [SITE_INIT; SITE_COUNT];

/// Fast-path flag: any site armed?
static ARMED: AtomicBool = AtomicBool::new(false);
/// One-time `RJ_FAULTS` environment parse.
static ENV_INIT: Once = Once::new();
/// The environment baseline [`install`] guards restore on drop.
static ENV_CLAUSES: OnceLock<Vec<Clause>> = OnceLock::new();
/// Serializes programmatic installs across tests in one process.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn pack(c: &Clause) -> u64 {
    let kind = c.kind as u64 + 1;
    ((c.param as u64) << 32) | ((c.every as u64) << 8) | kind
}

fn unpack_kind(trig: u64) -> Option<FaultKind> {
    match trig & 0xFF {
        1 => Some(FaultKind::Interrupted),
        2 => Some(FaultKind::Eof),
        3 => Some(FaultKind::NotFound),
        4 => Some(FaultKind::Corrupt),
        5 => Some(FaultKind::Panic),
        _ => None,
    }
}

fn apply(clauses: &[Clause]) {
    for s in &SITES {
        s.trig.store(0, Ordering::Relaxed);
        s.hits.store(0, Ordering::Relaxed);
    }
    for c in clauses {
        // Later clauses for the same site win.
        SITES[c.site].trig.store(pack(c), Ordering::Relaxed);
    }
    ARMED.store(!clauses.is_empty(), Ordering::Relaxed);
}

fn ensure_env() {
    ENV_INIT.call_once(|| {
        let clauses = match std::env::var("RJ_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => match parse_spec(&spec) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("RJ_FAULTS ignored: {e}");
                    Vec::new()
                }
            },
            _ => Vec::new(),
        };
        apply(&clauses);
        let _ = ENV_CLAUSES.set(clauses);
    });
}

/// Parse a spec string: `;`-separated clauses of the form
/// `site@N=kind` (fire on the Nth hit, once) or `site%K=kind` (fire on
/// every Kth hit), e.g.
/// `disk.read_at@3=interrupted;stream.worker%2=panic`.
fn parse_spec(spec: &str) -> Result<Vec<Clause>, String> {
    let mut out = Vec::new();
    for raw in spec.split(';') {
        let part = raw.trim();
        if part.is_empty() {
            continue;
        }
        let (lhs, kind_s) = part
            .split_once('=')
            .ok_or_else(|| format!("clause `{part}` has no `=kind`"))?;
        let kind = FaultKind::parse(kind_s.trim())
            .ok_or_else(|| format!("unknown fault kind `{}` in `{part}`", kind_s.trim()))?;
        let (site_s, every, param_s) = match (lhs.split_once('@'), lhs.split_once('%')) {
            (Some((s, n)), None) => (s, false, n),
            (None, Some((s, k))) => (s, true, k),
            _ => return Err(format!("clause `{part}` needs one `@N` or `%K` trigger")),
        };
        let site = SITE_NAMES
            .iter()
            .position(|&n| n == site_s.trim())
            .ok_or_else(|| format!("unknown failpoint site `{}`", site_s.trim()))?;
        let param: u32 = param_s
            .trim()
            .parse()
            .map_err(|_| format!("bad trigger count in `{part}`"))?;
        if param == 0 {
            return Err(format!("trigger count must be >= 1 in `{part}`"));
        }
        out.push(Clause {
            site,
            every,
            param,
            kind,
        });
    }
    Ok(out)
}

/// Record one hit at `site` and report the fault to inject, if any.
/// Call sites decide what the kind means for them (see the site docs).
#[inline]
pub fn hit(site: usize) -> Option<FaultKind> {
    ensure_env();
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    hit_armed(site)
}

#[cold]
fn hit_armed(site: usize) -> Option<FaultKind> {
    let s = SITES.get(site)?;
    let n = s.hits.fetch_add(1, Ordering::Relaxed) + 1;
    let trig = s.trig.load(Ordering::Relaxed);
    if trig == 0 {
        return None;
    }
    let param = trig >> 32;
    let every = trig & (1 << 8) != 0;
    let fires = if every { n % param == 0 } else { n == param };
    if fires {
        unpack_kind(trig)
    } else {
        None
    }
}

/// Hits recorded at `site` since the last arm/reset — lets a test sweep
/// "fail on the Nth hit" for every N a healthy run performs.
pub fn hit_count(site: usize) -> u64 {
    SITES
        .get(site)
        .map_or(0, |s| s.hits.load(Ordering::Relaxed))
}

/// The injected [`io::Error`] for `kind` — shared by every hook so
/// injected errors are recognizable (`injected fault:` prefix) and
/// carry the right `ErrorKind` for the retry/degradation policies.
pub fn io_error(kind: FaultKind) -> io::Error {
    match kind {
        FaultKind::Interrupted => io::Error::new(
            io::ErrorKind::Interrupted,
            "injected fault: interrupted read",
        ),
        FaultKind::Eof => {
            io::Error::new(io::ErrorKind::UnexpectedEof, "injected fault: short read")
        }
        FaultKind::NotFound => io::Error::new(
            io::ErrorKind::NotFound,
            "injected fault: file vanished mid-scan",
        ),
        FaultKind::Corrupt => FormatError::Corrupt("injected fault: corrupt payload".into()).into(),
        // Only the stream.* containment sites honor a panic; a no-panic
        // site degrades it to an ordinary typed error.
        FaultKind::Panic => io::Error::other("injected fault: panic at a non-panicking site"),
    }
}

/// Holds the programmatic fault spec installed by [`install`]; dropping
/// it restores the `RJ_FAULTS` environment baseline (or disarms) and
/// zeroes every hit counter. Also the serialization token: tests that
/// inject faults in one process run one at a time.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        apply(ENV_CLAUSES.get().map_or(&[][..], Vec::as_slice));
    }
}

/// Arm `spec` (same grammar as `RJ_FAULTS`) for the lifetime of the
/// returned guard, resetting all hit counters. An empty spec is valid
/// and useful: it arms pure hit *counting* with no injection, so a test
/// can measure how many times a healthy scan passes each site.
pub fn install(spec: &str) -> Result<FaultGuard, String> {
    ensure_env();
    let clauses = parse_spec(spec)?;
    let lock = INSTALL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    apply(&clauses);
    // An empty programmatic spec still arms counting (ARMED gates the
    // whole hook; counters only advance while armed).
    ARMED.store(true, Ordering::Relaxed);
    Ok(FaultGuard { _lock: lock })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_inject_nothing() {
        // An empty spec arms counting only: every site stays a no-op.
        // (Tests run in parallel; all assertions stay inside the guard.)
        let _g = install("").unwrap();
        for site in 0..SITE_COUNT {
            assert_eq!(hit(site), None);
        }
    }

    // Counting/firing assertions below use only the stream.* sites: no
    // hook for them lives in this crate, so concurrently-running disk /
    // codec tests in this binary cannot bump their counters. Tests that
    // inject into the disk.* sites live in their own integration-test
    // process (`tests/fault_recovery.rs`), where every test holds the
    // guard.

    #[test]
    fn nth_hit_fires_exactly_once() {
        let _g = install("stream.reader@3=interrupted").unwrap();
        assert_eq!(hit(STREAM_READER), None);
        assert_eq!(hit(STREAM_READER), None);
        assert_eq!(hit(STREAM_READER), Some(FaultKind::Interrupted));
        for _ in 0..10 {
            assert_eq!(hit(STREAM_READER), None);
        }
        assert_eq!(hit_count(STREAM_READER), 13);
    }

    #[test]
    fn every_k_fires_periodically() {
        let _g = install("stream.worker%2=corrupt").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| hit(STREAM_WORKER).is_some()).collect();
        assert_eq!(fired, [false, true, false, true, false, true]);
    }

    #[test]
    fn sites_are_independent_and_last_clause_wins() {
        let _g = install("stream.reader@1=notfound; stream.reader@2=eof; stream.worker%1=panic")
            .unwrap();
        assert_eq!(hit(STREAM_READER), None); // clause 2 replaced clause 1
        assert_eq!(hit(STREAM_READER), Some(FaultKind::Eof));
        assert_eq!(hit(STREAM_WORKER), Some(FaultKind::Panic));
        assert_eq!(hit(STREAM_WORKER), Some(FaultKind::Panic));
    }

    #[test]
    fn guard_drop_resets_counters_and_rearm_starts_clean() {
        {
            let _g = install("stream.reader@1=eof").unwrap();
            assert_eq!(hit(STREAM_READER), Some(FaultKind::Eof));
        }
        // Re-acquire the lock before asserting (tests run in parallel;
        // another guard may arm between our drop and these checks).
        let _g = install("").unwrap();
        assert_eq!(hit_count(STREAM_READER), 0);
        assert_eq!(hit(STREAM_READER), None);
    }

    #[test]
    fn empty_spec_counts_hits_without_injecting() {
        let _g = install("").unwrap();
        assert_eq!(hit(STREAM_WORKER), None);
        assert_eq!(hit(STREAM_WORKER), None);
        assert_eq!(hit_count(STREAM_WORKER), 2);
    }

    #[test]
    fn spec_errors_are_reported_not_panicked() {
        for bad in [
            "nope@1=eof",
            "disk.read_at=eof",
            "disk.read_at@0=eof",
            "disk.read_at@x=eof",
            "disk.read_at@1=meteor",
            "disk.read_at@1",
        ] {
            assert!(install(bad).is_err(), "spec `{bad}` must be rejected");
        }
    }

    #[test]
    fn io_errors_carry_the_retry_relevant_kinds() {
        assert_eq!(
            io_error(FaultKind::Interrupted).kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(
            io_error(FaultKind::Eof).kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert_eq!(
            io_error(FaultKind::NotFound).kind(),
            io::ErrorKind::NotFound
        );
        let corrupt = io_error(FaultKind::Corrupt);
        assert!(matches!(
            FormatError::of(&corrupt),
            Some(FormatError::Corrupt(_))
        ));
        for k in [
            FaultKind::Interrupted,
            FaultKind::Eof,
            FaultKind::NotFound,
            FaultKind::Corrupt,
            FaultKind::Panic,
        ] {
            assert_eq!(FaultKind::parse(k.name()), Some(k));
            assert!(io_error(k).to_string().contains("injected fault"));
        }
    }

    #[test]
    fn every_site_has_a_unique_name() {
        for (i, a) in SITE_NAMES.iter().enumerate() {
            for b in SITE_NAMES.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_eq!(SITE_NAMES[DISK_READ_AT], "disk.read_at");
        assert_eq!(SITE_NAMES[STREAM_WORKER], "stream.worker");
    }
}
