//! Lossless per-chunk column codecs for the compressed on-disk format.
//!
//! The §7.7 disk-resident experiment is bandwidth-bound: PR 3's prefetch
//! reader already hides processing under the read, so the next win is
//! shrinking the bytes read (CuRast streams billions of triangles by
//! compressing geometry on SSD; GeoBlocks gets interactivity from compact
//! block-level storage). This module provides the codecs; the file layout
//! that embeds them is `disk.rs`'s format v2 (`write_table_compressed`).
//!
//! # On-disk format v2/v3 (header layout)
//!
//! All integers little-endian:
//!
//! ```text
//! magic      u64   = 0x524a_5054_424c_3032 ("RJPTBL02")
//!                  | 0x524a_5054_424c_3033 ("RJPTBL03")
//! rows       u64
//! ncols      u32
//! per column: name_len u32, name bytes (UTF-8)
//! chunk_rows u64         stored-chunk granularity (last chunk short)
//! n_chunks   u32
//! v2 directory: per chunk, block_len u64
//! v3 directory: per chunk, per stored column, entry_len u32
//! then the chunk blocks back to back; each block holds, for every
//! stored column in order (xs, ys, attr 0, attr 1, …), one *entry*:
//!   codec    u8          one of the CODEC_* ids below
//!   enc_len  u32         payload byte length
//!   payload  enc_len bytes
//! ```
//!
//! The v2 and v3 data sections are byte-identical; they differ only in
//! the directory. v3's per-column entry lengths (`entry_len` = 5 +
//! `enc_len`) make every column of every chunk independently addressable,
//! which is what lets a pruned scan (`disk.rs`,
//! `ChunkedReader::open_projected`) fetch *only* the columns a query
//! touches with positioned reads — the pruned-read protocol. A v2 reader
//! can only fetch whole blocks, so pruning there projects after decode.
//!
//! The v1 header differs only in the magic (`…3031`) and has no chunk
//! directory — its data section is raw contiguous columns. Readers accept
//! all three.
//!
//! **Forward-compat rule:** the trailing magic byte is the format
//! version. A reader must accept any version ≤ its own and reject newer
//! ones with [`FormatError::UnsupportedVersion`] (never attempt a decode);
//! within a version, unknown codec ids are a hard
//! [`FormatError::Corrupt`] error. Writers may only add codec ids — or
//! change the directory layout, as v3 did — together with a version bump.
//!
//! # Codecs
//!
//! Every codec is **bit-exact lossless**: `decode(encode(col)) == col` to
//! the bit, including NaN payloads and `-0.0` (the fixed-point probe
//! verifies a bit-exact round trip per value and rejects the column
//! otherwise). The encoder tries each applicable codec and keeps the
//! smallest encoding, per column per chunk — the per-chunk codec choice
//! recorded in the chunk block.
//!
//! * [`CODEC_RAW`] (0) — plain little-endian values, the fallback that
//!   makes compression free to decline.
//! * [`CODEC_FOR`] (1) — fixed-point frame-of-reference bit packing for
//!   integer-valued columns (counts, hour-of-week timestamps, fares in
//!   cents, coordinates on a sensor grid): probe the smallest `scale`
//!   such that every `v · 2^scale` is an integer reproducing `v` exactly,
//!   subtract the minimum, drop common trailing zero bits (`shift`), and
//!   bit-pack the residuals at the minimal width. Payload:
//!   `scale u8, shift u8, bits u8, ref i64, packed ⌈n·bits/8⌉ bytes`.
//! * [`CODEC_XOR`] (2) — XOR-delta + byte-plane shuffle + zero run-length
//!   coding for floating-point columns (Gorilla-style): XOR each value's
//!   bit pattern with its predecessor's, transpose the result bytes into
//!   per-byte planes (all byte-0s, then all byte-1s, …) so the
//!   slowly-varying sign/exponent/high-mantissa planes become long zero
//!   runs, then run-length encode zeros. Payload: the RLE stream
//!   (op `b < 128` ⇒ `b+1` literal bytes follow; `b ≥ 128` ⇒ `b-127`
//!   zero bytes).

use std::fmt;

/// Plain little-endian values (the identity codec).
pub const CODEC_RAW: u8 = 0;
/// Fixed-point frame-of-reference bit packing (integer-valued columns).
pub const CODEC_FOR: u8 = 1;
/// XOR-delta + byte shuffle + zero-RLE (floating-point columns).
pub const CODEC_XOR: u8 = 2;

/// Largest fixed-point scale the FOR probe tries: `2^24` resolves well
/// below micrometre grids on metre-unit extents and centi-cent currency
/// grids, while keeping scaled magnitudes far inside `i64`.
const MAX_SCALE: u32 = 24;

/// Read a little-endian `u32` from the first 4 bytes of `b`.
///
/// Decode paths must not panic on corrupt *values*, only on violated
/// *local* invariants: every caller passes a lane whose length it has
/// already validated (a `chunks_exact` window or a header-checked
/// range), so the slice below is a plain bounds check on a proven-long
/// slice, not a data-dependent failure path. Centralizing the reads here
/// keeps `try_into().unwrap()` — an unconditional-panic idiom the lint
/// pass rejects in decode code — out of the per-column loops.
#[inline]
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

/// Read a little-endian `i64` from the first 8 bytes of `b`. See
/// [`le_u32`] for the no-panic contract.
#[inline]
pub(crate) fn le_i64(b: &[u8]) -> i64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    i64::from_le_bytes(a)
}

/// Read a little-endian `f32` from the first 4 bytes of `b`. See
/// [`le_u32`] for the no-panic contract.
#[inline]
pub(crate) fn le_f32(b: &[u8]) -> f32 {
    f32::from_bits(le_u32(b))
}

/// Read a little-endian `f64` from the first 8 bytes of `b`. See
/// [`le_u32`] for the no-panic contract.
#[inline]
pub(crate) fn le_f64(b: &[u8]) -> f64 {
    f64::from_bits(le_i64(b) as u64)
}

/// One encoded column of one chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedColumn {
    /// One of the `CODEC_*` ids.
    pub codec: u8,
    /// The codec payload (excludes the id and length, which the chunk
    /// block carries).
    pub bytes: Vec<u8>,
}

/// A structural defect found while reading an encoded table: wrong or
/// foreign magic, a version newer than this reader, a header that
/// disagrees with the file, or an undecodable payload. Wrapped in an
/// [`std::io::Error`] of kind `InvalidData` by the disk reader; use
/// [`FormatError::of`] to recover the typed value from one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The file does not start with any known table magic.
    BadMagic,
    /// The magic is ours but the version byte is newer than this reader
    /// understands (see the module-level forward-compat rule).
    UnsupportedVersion(u32),
    /// The header implies more bytes than the file holds.
    Truncated { expected: u64, actual: u64 },
    /// A header field or codec payload is internally inconsistent.
    Corrupt(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not a columnar table file (bad magic)"),
            FormatError::UnsupportedVersion(v) => {
                write!(f, "table format version {v} is newer than this reader")
            }
            FormatError::Truncated { expected, actual } => write!(
                f,
                "table file truncated: header implies {expected} bytes, file has {actual}"
            ),
            FormatError::Corrupt(what) => write!(f, "corrupt table file: {what}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<FormatError> for std::io::Error {
    fn from(e: FormatError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

impl FormatError {
    /// Recover the typed error from an [`std::io::Error`] produced by the
    /// disk reader, if it carries one — at any depth of the source chain,
    /// so context wrappers (and nested `io::Error` layers, whose payload
    /// hides behind `get_ref` rather than `source`) don't mask it.
    pub fn of(e: &std::io::Error) -> Option<&FormatError> {
        let mut src: Option<&(dyn std::error::Error + 'static)> = e.get_ref().map(|b| b as _);
        while let Some(err) = src {
            if let Some(fe) = err.downcast_ref::<FormatError>() {
                return Some(fe);
            }
            src = match err.downcast_ref::<std::io::Error>() {
                Some(io) => io.get_ref().map(|b| b as _),
                None => err.source(),
            };
        }
        None
    }

    fn corrupt(what: impl Into<String>) -> FormatError {
        FormatError::Corrupt(what.into())
    }
}

/// The value types the codecs understand, as raw bit patterns plus the
/// exact-f64 bridge the fixed-point probe needs.
trait Value: Copy + PartialEq {
    /// Bytes per value on disk.
    const WIDTH: usize;
    /// The value's bit pattern, zero-extended to 64 bits.
    fn bits(self) -> u64;
    fn from_bits(b: u64) -> Self;
    /// Exact widening to f64 (both f32 and f64 widen exactly).
    fn widen(self) -> f64;
    /// Narrow a decoded f64 back; exactness is verified by the probe.
    fn narrow(v: f64) -> Self;
}

impl Value for f64 {
    const WIDTH: usize = 8;
    fn bits(self) -> u64 {
        self.to_bits()
    }
    fn from_bits(b: u64) -> Self {
        f64::from_bits(b)
    }
    fn widen(self) -> f64 {
        self
    }
    fn narrow(v: f64) -> Self {
        v
    }
}

impl Value for f32 {
    const WIDTH: usize = 4;
    fn bits(self) -> u64 {
        self.to_bits() as u64
    }
    fn from_bits(b: u64) -> Self {
        f32::from_bits(b as u32)
    }
    fn widen(self) -> f64 {
        self as f64
    }
    fn narrow(v: f64) -> Self {
        v as f32
    }
}

// --------------------------------------------------------------- encoding

/// Encode an f64 column (coordinates), keeping the smallest of the
/// applicable codecs.
pub fn encode_f64s(vals: &[f64]) -> EncodedColumn {
    encode(vals)
}

/// Encode an f32 column (attributes), keeping the smallest of the
/// applicable codecs.
pub fn encode_f32s(vals: &[f32]) -> EncodedColumn {
    encode(vals)
}

fn encode<T: Value>(vals: &[T]) -> EncodedColumn {
    let raw_len = vals.len() * T::WIDTH;
    let mut best = EncodedColumn {
        codec: CODEC_RAW,
        bytes: encode_raw(vals),
    };
    debug_assert_eq!(best.bytes.len(), raw_len);
    if let Some(bytes) = encode_for(vals) {
        if bytes.len() < best.bytes.len() {
            best = EncodedColumn {
                codec: CODEC_FOR,
                bytes,
            };
        }
    }
    let xor = encode_xor(vals);
    if xor.len() < best.bytes.len() {
        best = EncodedColumn {
            codec: CODEC_XOR,
            bytes: xor,
        };
    }
    best
}

fn encode_raw<T: Value>(vals: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * T::WIDTH);
    for v in vals {
        out.extend_from_slice(&v.bits().to_le_bytes()[..T::WIDTH]);
    }
    out
}

/// Probe the smallest power-of-two scale at which every value is an
/// integer that round-trips bit-exactly (rejects NaN, ±∞, `-0.0` and any
/// value off every probed grid), then frame-of-reference bit-pack.
fn encode_for<T: Value>(vals: &[T]) -> Option<Vec<u8>> {
    let mut scale = 0u32;
    let mut scaled: Vec<i64> = Vec::new();
    'probe: loop {
        scaled.clear();
        let mul = (1u64 << scale) as f64;
        for &v in vals {
            let a = v.widen() * mul;
            // Strict magnitude guard: |k| < 2^62 keeps `as i64` exact AND
            // bounds max−min below 2^63, so the frame-of-reference delta
            // can never overflow i64 (±2^62 exactly must be rejected).
            if !a.is_finite() || a.abs() >= (1i64 << 62) as f64 || a.fract() != 0.0 {
                if scale == MAX_SCALE {
                    return None;
                }
                scale += 1;
                continue 'probe;
            }
            let k = a as i64;
            if T::narrow(k as f64 / mul).bits() != v.bits() {
                // On-grid magnitude but not bit-identical (e.g. -0.0):
                // no scale will fix that.
                return None;
            }
            scaled.push(k);
        }
        break;
    }
    let reference = scaled.iter().copied().min().unwrap_or(0);
    let mut range = 0u64;
    let mut shift = 63u32;
    for k in &mut scaled {
        let d = (*k - reference) as u64;
        range = range.max(d);
        if d != 0 {
            shift = shift.min(d.trailing_zeros());
        }
        *k = d as i64;
    }
    if range == 0 {
        shift = 0;
    }
    let bits = (64 - range.leading_zeros()).saturating_sub(shift);
    let mut out = Vec::with_capacity(11 + (vals.len() * bits as usize).div_ceil(8));
    out.push(scale as u8);
    out.push(shift as u8);
    out.push(bits as u8);
    out.extend_from_slice(&reference.to_le_bytes());
    pack_bits(scaled.iter().map(|&d| (d as u64) >> shift), bits, &mut out);
    Some(out)
}

fn pack_bits(vals: impl Iterator<Item = u64>, bits: u32, out: &mut Vec<u8>) {
    if bits == 0 {
        return;
    }
    let mut acc = 0u128;
    let mut filled = 0u32;
    for v in vals {
        acc |= (v as u128) << filled;
        filled += bits;
        while filled >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            filled -= 8;
        }
    }
    if filled > 0 {
        out.push(acc as u8);
    }
}

/// XOR-delta the bit patterns, transpose into byte planes, zero-RLE.
fn encode_xor<T: Value>(vals: &[T]) -> Vec<u8> {
    let n = vals.len();
    let mut planes = vec![0u8; n * T::WIDTH];
    let mut prev = 0u64;
    for (i, v) in vals.iter().enumerate() {
        let d = v.bits() ^ prev;
        prev = v.bits();
        let db = d.to_le_bytes();
        for (plane, &b) in db.iter().take(T::WIDTH).enumerate() {
            planes[plane * n + i] = b;
        }
    }
    rle_encode(&planes)
}

/// Zero run-length coding: op `b < 128` ⇒ `b+1` literal bytes follow;
/// `b ≥ 128` ⇒ `b-127` zero bytes. Worst-case expansion 1/128 (the raw
/// fallback wins then anyway).
fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    let mut i = 0;
    let mut lit_start = 0;
    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut s = from;
        while s < to {
            let len = (to - s).min(128);
            out.push((len - 1) as u8);
            out.extend_from_slice(&data[s..s + len]);
            s += len;
        }
    };
    while i < data.len() {
        if data[i] == 0 {
            let mut j = i + 1;
            while j < data.len() && data[j] == 0 {
                j += 1;
            }
            // A lone zero rides cheaper inside a literal run.
            if j - i >= 2 {
                flush_literals(&mut out, lit_start, i);
                let mut run = j - i;
                while run > 0 {
                    let take = run.min(128);
                    out.push((127 + take) as u8);
                    run -= take;
                }
                lit_start = j;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, lit_start, data.len());
    out
}

// --------------------------------------------------------------- decoding

/// Decode an f64 column of `n` values.
pub fn decode_f64s(codec: u8, n: usize, payload: &[u8]) -> Result<Vec<f64>, FormatError> {
    decode(codec, n, payload)
}

/// Decode an f32 column of `n` values.
pub fn decode_f32s(codec: u8, n: usize, payload: &[u8]) -> Result<Vec<f32>, FormatError> {
    decode(codec, n, payload)
}

fn decode<T: Value>(codec: u8, n: usize, payload: &[u8]) -> Result<Vec<T>, FormatError> {
    // CODEC_DECODE failpoint: any armed kind decodes as corrupt payload —
    // the one typed failure a codec can produce.
    if crate::faults::hit(crate::faults::CODEC_DECODE).is_some() {
        return Err(FormatError::corrupt("injected fault: decode"));
    }
    match codec {
        CODEC_RAW => decode_raw(n, payload),
        CODEC_FOR => decode_for(n, payload),
        CODEC_XOR => decode_xor(n, payload),
        other => Err(FormatError::corrupt(format!("unknown codec id {other}"))),
    }
}

fn decode_raw<T: Value>(n: usize, payload: &[u8]) -> Result<Vec<T>, FormatError> {
    if payload.len() != n * T::WIDTH {
        return Err(FormatError::corrupt(format!(
            "raw column: {} bytes for {n} values of width {}",
            payload.len(),
            T::WIDTH
        )));
    }
    Ok(payload
        .chunks_exact(T::WIDTH)
        .map(|c| {
            let mut b = [0u8; 8];
            b[..T::WIDTH].copy_from_slice(c);
            T::from_bits(u64::from_le_bytes(b))
        })
        .collect())
}

fn decode_for<T: Value>(n: usize, payload: &[u8]) -> Result<Vec<T>, FormatError> {
    if payload.len() < 11 {
        return Err(FormatError::corrupt("FOR column: payload under 11 bytes"));
    }
    let scale = payload[0] as u32;
    let shift = payload[1] as u32;
    let bits = payload[2] as u32;
    let reference = le_i64(&payload[3..11]);
    if scale > MAX_SCALE || bits > 63 || shift >= 64 || bits + shift > 64 {
        return Err(FormatError::corrupt(format!(
            "FOR column: scale {scale} / shift {shift} / bits {bits} out of range"
        )));
    }
    let packed = &payload[11..];
    let need = (n * bits as usize).div_ceil(8);
    if packed.len() != need {
        return Err(FormatError::corrupt(format!(
            "FOR column: {} packed bytes, {need} expected for {n} values × {bits} bits",
            packed.len()
        )));
    }
    let inv = 1.0 / (1u64 << scale) as f64;
    let mut out = Vec::with_capacity(n);
    let mut acc = 0u128;
    let mut filled = 0u32;
    let mut at = 0usize;
    let mask = if bits == 0 {
        0
    } else {
        u64::MAX >> (64 - bits)
    };
    for _ in 0..n {
        while filled < bits {
            acc |= (packed[at] as u128) << filled;
            at += 1;
            filled += 8;
        }
        let d = (acc as u64) & mask;
        acc >>= bits;
        filled -= bits;
        let k = reference.wrapping_add((d << shift) as i64);
        out.push(T::narrow(k as f64 * inv));
    }
    Ok(out)
}

fn decode_xor<T: Value>(n: usize, payload: &[u8]) -> Result<Vec<T>, FormatError> {
    let planes = rle_decode(payload, n * T::WIDTH)?;
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u64;
    for i in 0..n {
        let mut b = [0u8; 8];
        for (plane, byte) in b.iter_mut().take(T::WIDTH).enumerate() {
            *byte = planes[plane * n + i];
        }
        prev ^= u64::from_le_bytes(b);
        out.push(T::from_bits(prev));
    }
    Ok(out)
}

fn rle_decode(stream: &[u8], expect: usize) -> Result<Vec<u8>, FormatError> {
    let mut out = Vec::with_capacity(expect);
    let mut i = 0;
    while i < stream.len() {
        let op = stream[i] as usize;
        i += 1;
        if op < 128 {
            let len = op + 1;
            if i + len > stream.len() {
                return Err(FormatError::corrupt("RLE literal run past payload end"));
            }
            out.extend_from_slice(&stream[i..i + len]);
            i += len;
        } else {
            out.resize(out.len() + (op - 127), 0);
        }
        if out.len() > expect {
            return Err(FormatError::corrupt(format!(
                "RLE stream inflates past the column ({} > {expect} bytes)",
                out.len()
            )));
        }
    }
    if out.len() != expect {
        return Err(FormatError::corrupt(format!(
            "RLE stream ends early ({} of {expect} bytes)",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_f64(vals: &[f64]) -> EncodedColumn {
        let enc = encode_f64s(vals);
        let back = decode_f64s(enc.codec, vals.len(), &enc.bytes).expect("decode");
        let (got, want): (Vec<u64>, Vec<u64>) = (
            back.iter().map(|v| v.to_bits()).collect(),
            vals.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(got, want, "f64 round trip (codec {})", enc.codec);
        enc
    }

    fn roundtrip_f32(vals: &[f32]) -> EncodedColumn {
        let enc = encode_f32s(vals);
        let back = decode_f32s(enc.codec, vals.len(), &enc.bytes).expect("decode");
        let (got, want): (Vec<u32>, Vec<u32>) = (
            back.iter().map(|v| v.to_bits()).collect(),
            vals.iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(got, want, "f32 round trip (codec {})", enc.codec);
        enc
    }

    #[test]
    fn integer_valued_column_bit_packs() {
        // Passenger counts 1..=6: 3 bits per value after FOR.
        let vals: Vec<f32> = (0..10_000).map(|i| (i % 6 + 1) as f32).collect();
        let enc = roundtrip_f32(&vals);
        assert_eq!(enc.codec, CODEC_FOR);
        assert!(
            enc.bytes.len() < vals.len(), // < 1 byte per value vs 4 raw
            "{} bytes for {} small ints",
            enc.bytes.len(),
            vals.len()
        );
    }

    /// A deterministic splitmix-style generator for value shuffling.
    fn rand_u64(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *state >> 11
    }

    #[test]
    fn grid_coordinates_bit_pack() {
        // Metre coordinates on a 2^-10 m grid over a 58 km extent, in
        // arrival (spatially random) order — XOR-delta gets nothing, the
        // probe must find scale 10 and pack at ~26 bits.
        let mut state = 42u64;
        let vals: Vec<f64> = (0..4_096)
            .map(|_| (rand_u64(&mut state) % 59_000_000) as f64 / 1024.0)
            .collect();
        let enc = roundtrip_f64(&vals);
        assert_eq!(enc.codec, CODEC_FOR);
        assert_eq!(enc.bytes[0], 10, "probe must settle on the 2^-10 grid");
        assert!(enc.bytes.len() <= 11 + vals.len() * 26 / 8 + 1);
    }

    #[test]
    fn constant_column_is_tiny() {
        let enc = roundtrip_f32(&[4.25f32; 100_000]);
        assert_eq!(enc.codec, CODEC_FOR);
        assert_eq!(enc.bytes.len(), 11, "constant ⇒ zero packed bits");
        // Constant NaN can't take the FOR path but XOR turns it into one
        // literal + zeros.
        let enc = roundtrip_f32(&[f32::NAN; 100_000]);
        assert_eq!(enc.codec, CODEC_XOR);
        assert!(enc.bytes.len() < 4 * 100_000 / 100);
    }

    #[test]
    fn slowly_varying_f32_compresses_via_xor() {
        // The taxi `hour` column: monotone, tiny increments — high byte
        // planes are almost all zero after XOR-delta.
        let vals: Vec<f32> = (0..100_000).map(|i| i as f32 / 100_000.0 * 168.0).collect();
        let enc = roundtrip_f32(&vals);
        assert_eq!(enc.codec, CODEC_XOR);
        assert!(
            enc.bytes.len() * 4 < vals.len() * 4 * 3,
            "{} bytes vs {} raw",
            enc.bytes.len(),
            vals.len() * 4
        );
    }

    #[test]
    fn incompressible_column_falls_back_to_raw() {
        // Full-entropy bit patterns: neither codec can win.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let vals: Vec<f64> = (0..4_096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let bits = state ^ (state << 13) ^ (state >> 7);
                f64::from_bits(bits)
            })
            .collect();
        let enc = roundtrip_f64(&vals);
        assert_eq!(enc.codec, CODEC_RAW);
        assert_eq!(enc.bytes.len(), vals.len() * 8);
    }

    #[test]
    fn special_values_round_trip() {
        roundtrip_f64(&[
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            -1.5e-300,
        ]);
        roundtrip_f32(&[0.0, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY]);
        // -0.0 must keep its sign bit: FOR would decode it as +0.0, so the
        // probe has to reject the column.
        let enc = encode_f64s(&[-0.0, 1.0, 2.0]);
        assert_ne!(enc.codec, CODEC_FOR);
    }

    #[test]
    fn empty_column_round_trips() {
        let enc = roundtrip_f64(&[]);
        assert!(enc.bytes.is_empty());
        roundtrip_f32(&[]);
    }

    #[test]
    fn extreme_magnitudes_never_overflow_the_probe() {
        // ±2^62 exactly: on-grid integers whose frame-of-reference delta
        // would overflow i64 — the probe must reject them (falling back
        // to XOR/raw), not panic in debug builds.
        let huge = (1i64 << 62) as f64;
        let enc = roundtrip_f64(&[-huge, huge]);
        assert_ne!(enc.codec, CODEC_FOR);
        // Just inside the guard still packs.
        let ok = [-(huge / 2.0) + 1.0, huge / 2.0 - 1.0, 0.0];
        let enc = encode_f64s(&ok);
        let back = decode_f64s(enc.codec, ok.len(), &enc.bytes).unwrap();
        assert_eq!(back, ok);
    }

    #[test]
    fn negative_and_mixed_sign_integers_pack() {
        // Random order so the XOR codec can't ride the constant stride.
        let mut state = 7u64;
        let vals: Vec<f64> = (0..2_000)
            .map(|_| (rand_u64(&mut state) % 1000) as f64 * 3.0 - 1500.0)
            .collect();
        let enc = roundtrip_f64(&vals);
        assert_eq!(enc.codec, CODEC_FOR);
    }

    #[test]
    fn unknown_codec_is_corrupt_not_panic() {
        let err = decode_f32s(77, 10, &[0u8; 40]).unwrap_err();
        assert!(matches!(err, FormatError::Corrupt(_)), "{err}");
    }

    #[test]
    fn truncated_payloads_are_corrupt_not_panic() {
        let vals: Vec<f32> = (0..1000).map(|i| (i % 7) as f32).collect();
        let enc = encode_f32s(&vals);
        assert_eq!(enc.codec, CODEC_FOR);
        for cut in [0, 5, enc.bytes.len() - 1] {
            assert!(decode_f32s(enc.codec, vals.len(), &enc.bytes[..cut]).is_err());
        }
        // Wrong claimed length on a raw column.
        assert!(decode_f64s(CODEC_RAW, 3, &[0u8; 17]).is_err());
        // XOR stream that ends early / inflates past the column.
        let vals: Vec<f32> = (0..100).map(|i| i as f32 * 0.1).collect();
        let enc = encode_f32s(&vals);
        assert_eq!(enc.codec, CODEC_XOR);
        assert!(decode_f32s(CODEC_XOR, vals.len(), &enc.bytes[..enc.bytes.len() - 2]).is_err());
        assert!(decode_f32s(CODEC_XOR, 10, &enc.bytes).is_err());
    }

    #[test]
    fn for_decode_validates_header_fields() {
        // bits > 63.
        let mut p = vec![0u8, 0, 64];
        p.extend_from_slice(&0i64.to_le_bytes());
        assert!(decode_f64s(CODEC_FOR, 1, &p).is_err());
        // scale beyond the probe's maximum.
        let mut p = vec![60u8, 0, 1];
        p.extend_from_slice(&0i64.to_le_bytes());
        p.push(0);
        assert!(decode_f64s(CODEC_FOR, 1, &p).is_err());
    }

    #[test]
    fn rle_handles_long_runs_and_lone_zeros() {
        let mut data = vec![0u8; 1000];
        data.extend_from_slice(&[1, 2, 3, 0, 4, 5]);
        data.extend(vec![0u8; 300]);
        data.extend(std::iter::repeat_n(7u8, 400));
        let enc = rle_encode(&data);
        assert_eq!(rle_decode(&enc, data.len()).unwrap(), data);
        assert!(enc.len() < data.len());
    }

    #[test]
    fn format_error_round_trips_through_io_error() {
        let io: std::io::Error = FormatError::BadMagic.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(FormatError::of(&io), Some(&FormatError::BadMagic));
        let plain = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        assert_eq!(FormatError::of(&plain), None);
    }
}
