//! Polygonal query sets.
//!
//! Stand-ins for the paper's two real polygon sets (Table 1) — NYC
//! neighborhoods (260 polygons) and US counties (3 945 polygons) — built
//! with the paper's own §7.4 generator (constrained Voronoi + merging), at
//! matching cardinality over the matching extent. Arbitrary-count
//! generation backs the polygon-scaling experiment (Fig. 10).

use crate::generators::{nyc_extent, us_extent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use raster_geom::merge::generate_polygons;
use raster_geom::{BBox, Polygon};

/// Number of polygons in the NYC-neighborhoods stand-in (Table 1).
pub const NYC_NEIGHBORHOOD_COUNT: usize = 260;

/// Number of polygons in the US-counties stand-in (Table 1).
pub const US_COUNTY_COUNT: usize = 3_945;

/// Boundary subdivision step for the NYC stand-in, chosen so polygons
/// average the "hundreds of vertices" complexity of the real
/// neighborhoods (§1, Table 1's 877 KB for 260 polygons).
pub const NYC_DENSIFY_EDGE_M: f64 = 60.0;

/// Boundary subdivision step for the US-counties stand-in.
pub const US_DENSIFY_EDGE_M: f64 = 2_000.0;

/// The NYC-neighborhoods stand-in: 260 complex polygons tiling the NYC
/// extent, deterministic, densified to realistic vertex counts.
pub fn nyc_neighborhoods() -> Vec<Polygon> {
    let mut rng = StdRng::seed_from_u64(0x4e5943); // "NYC"
    generate_polygons(NYC_NEIGHBORHOOD_COUNT, &nyc_extent(), &mut rng)
        .iter()
        .map(|p| p.densified(NYC_DENSIFY_EDGE_M))
        .collect()
}

/// The US-counties stand-in: 3 945 polygons tiling the US extent,
/// deterministic, densified to realistic vertex counts.
pub fn us_counties() -> Vec<Polygon> {
    let mut rng = StdRng::seed_from_u64(0x5553); // "US"
    generate_polygons(US_COUNTY_COUNT, &us_extent(), &mut rng)
        .iter()
        .map(|p| p.densified(US_DENSIFY_EDGE_M))
        .collect()
}

/// Arbitrary-count polygon workload over `extent` (Fig. 10 sweeps 2⁸…2¹⁶).
pub fn synthetic_polygons(count: usize, extent: &BBox, seed: u64) -> Vec<Polygon> {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_polygons(count, extent, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nyc_set_has_expected_cardinality_and_extent() {
        let polys = nyc_neighborhoods();
        assert_eq!(polys.len(), NYC_NEIGHBORHOOD_COUNT);
        let e = nyc_extent();
        let total: f64 = polys.iter().map(Polygon::area).sum();
        // The set tiles the extent (up to FP slack).
        assert!(
            (total - e.area()).abs() / e.area() < 1e-3,
            "total area {total} vs extent {}",
            e.area()
        );
    }

    #[test]
    fn nyc_set_is_deterministic() {
        let a = nyc_neighborhoods();
        let b = nyc_neighborhoods();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].outer().points(), b[0].outer().points());
    }

    #[test]
    fn synthetic_polygons_hit_requested_count() {
        let e = nyc_extent();
        for count in [16usize, 64, 256] {
            let p = synthetic_polygons(count, &e, 1);
            assert_eq!(p.len(), count);
        }
    }

    #[test]
    fn polygons_have_complex_shapes() {
        // Merged polygons must average well above 4 vertices (the paper's
        // real polygons have hundreds; complexity scales with merge depth).
        let p = synthetic_polygons(32, &nyc_extent(), 2);
        let avg: f64 = p.iter().map(|q| q.vertex_count() as f64).sum::<f64>() / p.len() as f64;
        assert!(avg > 6.0, "average vertex count {avg}");
    }

    #[test]
    fn nyc_stand_in_has_hundreds_of_vertices_per_polygon() {
        let polys = nyc_neighborhoods();
        let avg: f64 =
            polys.iter().map(|p| p.vertex_count() as f64).sum::<f64>() / polys.len() as f64;
        assert!(
            (100.0..2_000.0).contains(&avg),
            "average vertex count {avg} outside the realistic band"
        );
    }
}
