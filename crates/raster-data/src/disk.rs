//! Binary columnar on-disk format with a chunked out-of-core reader.
//!
//! The paper stores both data sets as binary columns on disk (§7.1) and,
//! for the disk-resident experiment (§7.7 / Fig. 13), "simply reads data
//! from disk as and when required to transfer to the GPU" without parallel
//! prefetching. This module mirrors that: a self-describing little-endian
//! columnar file plus [`ChunkedReader`], which streams fixed-size record
//! batches so a query never holds more than one chunk in memory. (The
//! prefetching streaming executor that overlaps these reads with join
//! processing lives in `raster-join::stream`.)
//!
//! Two format versions share the magic prefix and differ in the trailing
//! version byte (see [`crate::codec`] for the full v2 layout and the
//! forward-compat rule):
//!
//! * **v1** (`RJPTBL01`, [`write_table`]) — raw contiguous columns. Each
//!   chunk is read with one *positioned* read per column (`pread`-style
//!   on Unix), issued in ascending file-offset order; when a single chunk
//!   covers the whole remainder — the `read_table` whole-file load — this
//!   degenerates to one sequential pass over the data section. Column
//!   bytes are decoded straight into the final column `Vec`s
//!   ([`PointTable::from_columns`]) through one reused scratch buffer.
//! * **v2** (`RJPTBL02`, [`write_table_compressed`]) — chunked compressed
//!   columns: the data section is a sequence of stored-chunk blocks, each
//!   holding every column of its row range encoded with the per-chunk
//!   codec choice of [`crate::codec`]. A block is fetched with a single
//!   positioned read and decoded column-wise; [`ChunkedReader`] re-slices
//!   stored chunks to whatever delivery chunk size the caller asked for,
//!   so v1 and v2 files behave identically above this module.
//!
//! Structural defects (foreign magic, newer version, truncation,
//! undecodable payloads) surface as [`FormatError`] wrapped in an
//! `InvalidData` [`io::Error`] — recover the typed value with
//! [`FormatError::of`].
//!
//! v1 layout (little-endian):
//! ```text
//! magic  u64   = 0x524a5054424c3031 ("RJPTBL01")
//! rows   u64
//! ncols  u32
//! per column: name_len u32, name bytes (UTF-8)
//! xs     rows × f64
//! ys     rows × f64
//! per column: rows × f32
//! ```

use crate::codec::{self, FormatError};
use crate::table::PointTable;
use bytes::{Buf, BufMut, BytesMut};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;
use std::time::{Duration, Instant};

const MAGIC: u64 = 0x524a_5054_424c_3031;
const MAGIC_V2: u64 = 0x524a_5054_424c_3032;
/// The shared `RJPTBL0` prefix; the low byte is the ASCII version digit.
const MAGIC_PREFIX: u64 = 0x524a_5054_424c_3000;

/// Default stored-chunk granularity of [`write_table_compressed`]: large
/// enough that per-column headers are noise and the FOR/XOR probes see
/// representative value ranges, small enough that one decoded block is a
/// few MB.
pub const DEFAULT_COMPRESSED_CHUNK_ROWS: usize = 1 << 18;

/// Serialize a table to the columnar format.
pub fn write_table(path: &Path, table: &PointTable) -> io::Result<()> {
    let f = File::create(path)?;
    let mut w = BufWriter::new(f);
    let mut header = BytesMut::new();
    header.put_u64_le(MAGIC);
    header.put_u64_le(table.len() as u64);
    header.put_u32_le(table.attr_count() as u32);
    for name in table.attr_names() {
        header.put_u32_le(name.len() as u32);
        header.put_slice(name.as_bytes());
    }
    w.write_all(&header)?;

    let mut buf = BytesMut::with_capacity(table.len() * 8);
    for &x in table.xs() {
        buf.put_f64_le(x);
    }
    w.write_all(&buf)?;
    buf.clear();
    for &y in table.ys() {
        buf.put_f64_le(y);
    }
    w.write_all(&buf)?;
    for c in 0..table.attr_count() {
        buf.clear();
        for &v in table.attr(c) {
            buf.put_f32_le(v);
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Serialize a table to the compressed chunked format (v2): every column
/// of every `chunk_rows`-row stored chunk is encoded with the smallest
/// applicable codec ([`crate::codec`]) and the chunk blocks are indexed
/// by a directory in the header, so the reader can fetch any block with
/// one positioned read.
///
/// Blocks are encoded and written one at a time — peak extra memory is a
/// single encoded block, not the whole compressed file — and the header's
/// chunk directory (whose lengths are only known afterwards) is
/// back-patched with one positioned write at the end.
pub fn write_table_compressed(
    path: &Path,
    table: &PointTable,
    chunk_rows: usize,
) -> io::Result<()> {
    let chunk_rows = chunk_rows.max(1);
    let n_chunks = table.len().div_ceil(chunk_rows);

    let f = File::create(path)?;
    let mut w = BufWriter::new(f);
    let mut header = BytesMut::new();
    header.put_u64_le(MAGIC_V2);
    header.put_u64_le(table.len() as u64);
    header.put_u32_le(table.attr_count() as u32);
    for name in table.attr_names() {
        header.put_u32_le(name.len() as u32);
        header.put_slice(name.as_bytes());
    }
    header.put_u64_le(chunk_rows as u64);
    header.put_u32_le(n_chunks as u32);
    let dir_offset = header.len() as u64;
    for _ in 0..n_chunks {
        header.put_u64_le(0); // directory placeholder, patched below
    }
    w.write_all(&header)?;

    let mut lens = BytesMut::with_capacity(n_chunks * 8);
    let mut block = Vec::new();
    let mut start = 0usize;
    while start < table.len() {
        let end = (start + chunk_rows).min(table.len());
        block.clear();
        let mut put = |col: codec::EncodedColumn| {
            block.push(col.codec);
            block.extend_from_slice(&(col.bytes.len() as u32).to_le_bytes());
            block.extend_from_slice(&col.bytes);
        };
        put(codec::encode_f64s(&table.xs()[start..end]));
        put(codec::encode_f64s(&table.ys()[start..end]));
        for c in 0..table.attr_count() {
            put(codec::encode_f32s(&table.attr(c)[start..end]));
        }
        w.write_all(&block)?;
        lens.put_u64_le(block.len() as u64);
        start = end;
    }
    w.flush()?;
    let f = w.into_inner().map_err(|e| e.into_error())?;
    write_at(&f, dir_offset, &lens)
}

/// Positioned write for the directory back-patch (`pwrite`-style on
/// Unix; a seek + write elsewhere).
#[cfg(unix)]
fn write_at(f: &File, offset: u64, bytes: &[u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.write_all_at(bytes, offset)
}

#[cfg(not(unix))]
fn write_at(mut f: &File, offset: u64, bytes: &[u8]) -> io::Result<()> {
    use std::io::{Seek, SeekFrom};
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(bytes)
}

/// File metadata read from the header.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub rows: u64,
    pub attr_names: Vec<String>,
    header_bytes: u64,
    /// Format version (1 = raw columns, 2 = compressed chunk blocks).
    version: u32,
    /// v2 only: stored-chunk granularity (last chunk short).
    chunk_rows: u64,
    /// v2 only: byte length of each stored-chunk block.
    chunk_lens: Vec<u64>,
}

impl TableMeta {
    fn col_count(&self) -> usize {
        self.attr_names.len()
    }

    fn xs_offset(&self) -> u64 {
        self.header_bytes
    }

    fn ys_offset(&self) -> u64 {
        self.xs_offset() + self.rows * 8
    }

    fn attr_offset(&self, c: usize) -> u64 {
        self.ys_offset() + self.rows * 8 + (c as u64) * self.rows * 4
    }

    /// Total file size implied by the header.
    pub fn file_bytes(&self) -> u64 {
        match self.version {
            1 => self.attr_offset(self.col_count()),
            _ => self.header_bytes + self.chunk_lens.iter().sum::<u64>(),
        }
    }

    /// Format version (1 = raw columns, 2 = compressed chunk blocks).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Does the data section hold compressed chunk blocks?
    pub fn is_compressed(&self) -> bool {
        self.version >= 2
    }

    /// Logical (uncompressed) bytes per row: two f64 coordinates plus one
    /// f32 per attribute column.
    pub fn row_bytes(&self) -> usize {
        16 + 4 * self.col_count()
    }

    /// Bytes a full scan reads off disk: the raw data section for v1,
    /// the compressed blocks for v2.
    pub fn scan_bytes(&self) -> u64 {
        match self.version {
            1 => self.rows * self.row_bytes() as u64,
            _ => self.chunk_lens.iter().sum::<u64>(),
        }
    }

    /// Number of stored columns (coordinates + attributes).
    fn stored_cols(&self) -> usize {
        2 + self.col_count()
    }
}

fn read_meta<R: Read>(r: &mut R, file_len: u64) -> io::Result<TableMeta> {
    let mut fixed = [0u8; 20];
    r.read_exact(&mut fixed)?;
    let mut b = &fixed[..];
    let magic = b.get_u64_le();
    let version = match magic {
        MAGIC => 1,
        MAGIC_V2 => 2,
        m if m & !0xFF == MAGIC_PREFIX && (m & 0xFF) as u8 > b'2' => {
            return Err(FormatError::UnsupportedVersion((m & 0xFF) as u32 - b'0' as u32).into());
        }
        _ => return Err(FormatError::BadMagic.into()),
    };
    let rows = b.get_u64_le();
    let ncols = b.get_u32_le();
    let mut names = Vec::with_capacity(ncols.min(1 << 16) as usize);
    let mut header_bytes = 20u64;
    for _ in 0..ncols {
        let mut lenb = [0u8; 4];
        r.read_exact(&mut lenb)?;
        let len = u32::from_le_bytes(lenb) as usize;
        if header_bytes + 4 + len as u64 > file_len {
            return Err(FormatError::Corrupt("column name runs past the file".into()).into());
        }
        let mut name = vec![0u8; len];
        r.read_exact(&mut name)?;
        header_bytes += 4 + len as u64;
        names.push(
            String::from_utf8(name).map_err(|_| {
                io::Error::from(FormatError::Corrupt("non-UTF8 column name".into()))
            })?,
        );
    }
    let (chunk_rows, chunk_lens) = if version >= 2 {
        let mut fixed = [0u8; 12];
        r.read_exact(&mut fixed)?;
        let mut b = &fixed[..];
        let chunk_rows = b.get_u64_le();
        let n_chunks = b.get_u32_le() as u64;
        header_bytes += 12;
        if rows > 0 && chunk_rows == 0 {
            return Err(FormatError::Corrupt("zero stored-chunk rows".into()).into());
        }
        let expect_chunks = if rows == 0 {
            0
        } else {
            rows.div_ceil(chunk_rows)
        };
        if n_chunks != expect_chunks {
            return Err(FormatError::Corrupt(format!(
                "{n_chunks} stored chunks, {expect_chunks} implied by {rows} rows × {chunk_rows}"
            ))
            .into());
        }
        if header_bytes + n_chunks * 8 > file_len {
            return Err(FormatError::Corrupt("chunk directory runs past the file".into()).into());
        }
        let mut lens = Vec::with_capacity(n_chunks as usize);
        // Checked accumulation: a corrupted directory entry (e.g.
        // u64::MAX) must surface as a typed error here, not overflow the
        // later prefix sums / size checks into a wrap-around that passes
        // validation and then aborts on a giant allocation.
        let overflow = || {
            io::Error::from(FormatError::Corrupt(
                "chunk directory lengths overflow".into(),
            ))
        };
        let mut total = 0u64;
        for _ in 0..n_chunks {
            let mut lb = [0u8; 8];
            r.read_exact(&mut lb)?;
            let len = u64::from_le_bytes(lb);
            total = total.checked_add(len).ok_or_else(overflow)?;
            lens.push(len);
        }
        header_bytes += n_chunks * 8;
        // Non-overflowing but file-exceeding totals are ordinary
        // truncation, reported as such by validate_size.
        total.checked_add(header_bytes).ok_or_else(overflow)?;
        (chunk_rows, lens)
    } else {
        (0, Vec::new())
    };
    Ok(TableMeta {
        rows,
        attr_names: names,
        header_bytes,
        version,
        chunk_rows,
        chunk_lens,
    })
}

/// Load the whole file into memory (the in-memory experiments). Single
/// sequential pass over the data section, decoded column-wise.
pub fn read_table(path: &Path) -> io::Result<PointTable> {
    let mut reader = ChunkedReader::open(path, usize::MAX)?;
    reader
        .next_chunk()?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "empty table file"))
}

/// Read just the header of a columnar table file (schema discovery for
/// the SQL `FROM 'path.bin'` source and the streaming planner), with the
/// same truncation validation as [`ChunkedReader::open`].
pub fn table_meta(path: &Path) -> io::Result<TableMeta> {
    let mut f = File::open(path)?;
    let actual_bytes = f.metadata()?.len();
    let meta = read_meta(&mut f, actual_bytes)?;
    validate_size(&meta, actual_bytes)?;
    Ok(meta)
}

fn validate_size(meta: &TableMeta, actual_bytes: u64) -> io::Result<()> {
    // Fail fast on truncated or inconsistent files: a header claiming
    // more data than the file holds would otherwise surface as an
    // UnexpectedEof deep inside a chunked scan (possibly hours into
    // the §7.7 disk-resident experiment).
    if actual_bytes < meta.file_bytes() {
        return Err(FormatError::Truncated {
            expected: meta.file_bytes(),
            actual: actual_bytes,
        }
        .into());
    }
    Ok(())
}

/// Streams record batches of at most `chunk_rows` from a columnar file
/// (either format version; compressed stored chunks are decoded and
/// re-sliced transparently).
#[derive(Debug)]
pub struct ChunkedReader {
    file: File,
    meta: TableMeta,
    cursor: u64,
    chunk_rows: usize,
    /// Reused raw-byte buffer: one column (v1) or one stored block (v2)
    /// at a time is decoded through it, so a chunk's footprint is its own
    /// storage plus this single scratch allocation.
    scratch: Vec<u8>,
    /// v2: index of the next stored block to fetch.
    next_block: usize,
    /// v2: file offset of each stored block (prefix sums of the chunk
    /// directory, computed once — a scan must not re-sum the prefix per
    /// fetch, which would be O(blocks²) over the whole file).
    block_offsets: Vec<u64>,
    /// v2: decoded stored chunk not yet fully delivered, plus the rows of
    /// it already taken.
    pending: Option<(PointTable, usize)>,
    bytes_read: u64,
    decode_time: Duration,
}

impl ChunkedReader {
    pub fn open(path: &Path, chunk_rows: usize) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let actual_bytes = file.metadata()?.len();
        let meta = read_meta(&mut file, actual_bytes)?;
        validate_size(&meta, actual_bytes)?;
        let mut block_offsets = Vec::with_capacity(meta.chunk_lens.len());
        let mut at = meta.header_bytes;
        for len in &meta.chunk_lens {
            block_offsets.push(at);
            at += len;
        }
        Ok(ChunkedReader {
            file,
            meta,
            cursor: 0,
            chunk_rows: chunk_rows.max(1),
            scratch: Vec::new(),
            next_block: 0,
            block_offsets,
            pending: None,
            bytes_read: 0,
            decode_time: Duration::ZERO,
        })
    }

    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// Rows already consumed.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Bytes fetched from disk so far: raw column bytes for v1 files,
    /// compressed block bytes for v2 — the quantity a bandwidth-bound
    /// scan actually pays for (and the one the modelled-disk pacing
    /// charges).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Cumulative time spent decoding compressed blocks (zero for v1
    /// files); a subset of the wall time `next_chunk` calls took.
    pub fn decode_time(&self) -> Duration {
        self.decode_time
    }

    /// Rows remaining to be read.
    pub fn remaining(&self) -> u64 {
        self.meta.rows - self.cursor
    }

    /// Change the chunk size for subsequent [`Self::next_chunk`] calls.
    /// The streaming executor samples the first (small) chunk to summarise
    /// the workload, then switches to the planner-chosen chunk size
    /// without re-reading.
    pub fn set_chunk_rows(&mut self, chunk_rows: usize) {
        self.chunk_rows = chunk_rows.max(1);
    }

    /// Positioned read: does not move any shared cursor and keeps no
    /// buffered readahead to discard, so per-column jumps cost exactly one
    /// `pread` each (the old `BufReader` + `SeekFrom::Start` pairing threw
    /// its buffer away on every column of every chunk).
    #[cfg(unix)]
    fn read_at(&mut self, offset: u64, len: usize) -> io::Result<&[u8]> {
        use std::os::unix::fs::FileExt;
        self.scratch.resize(len, 0);
        self.file.read_exact_at(&mut self.scratch[..len], offset)?;
        Ok(&self.scratch[..len])
    }

    /// Fallback for targets without positioned reads: a raw seek on the
    /// unbuffered handle (still no readahead buffer to discard).
    #[cfg(not(unix))]
    fn read_at(&mut self, offset: u64, len: usize) -> io::Result<&[u8]> {
        use std::io::{Seek, SeekFrom};
        self.scratch.resize(len, 0);
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(&mut self.scratch[..len])?;
        Ok(&self.scratch[..len])
    }

    /// Read the next chunk, or `None` at end of data.
    ///
    /// * v1: one positioned read per column in ascending offset order;
    ///   when the chunk covers the whole remainder this is a single
    ///   sequential pass over the rest of the file.
    /// * v2: whole stored blocks are fetched with one positioned read
    ///   each and decoded; the decoded rows are re-sliced to the
    ///   requested delivery chunk size (a stored chunk that exactly fills
    ///   the request is handed over without copying).
    pub fn next_chunk(&mut self) -> io::Result<Option<PointTable>> {
        if self.meta.is_compressed() {
            return self.next_chunk_v2();
        }
        if self.cursor >= self.meta.rows {
            return Ok(None);
        }
        let n = (self.meta.rows - self.cursor).min(self.chunk_rows as u64) as usize;
        self.bytes_read += (n * self.meta.row_bytes()) as u64;

        let raw = self.read_at(self.meta.xs_offset() + self.cursor * 8, n * 8)?;
        let xs: Vec<f64> = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let raw = self.read_at(self.meta.ys_offset() + self.cursor * 8, n * 8)?;
        let ys: Vec<f64> = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();

        let mut attr_vals: Vec<Vec<f32>> = Vec::with_capacity(self.meta.col_count());
        for c in 0..self.meta.col_count() {
            let raw = self.read_at(self.meta.attr_offset(c) + self.cursor * 4, n * 4)?;
            attr_vals.push(
                raw.chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            );
        }

        let names: Vec<&str> = self.meta.attr_names.iter().map(String::as_str).collect();
        self.cursor += n as u64;
        Ok(Some(PointTable::from_columns(xs, ys, &names, attr_vals)))
    }

    /// v2 delivery: assemble up to `chunk_rows` rows from the pending
    /// decoded stored chunk and as many further blocks as needed.
    fn next_chunk_v2(&mut self) -> io::Result<Option<PointTable>> {
        let mut out: Option<PointTable> = None;
        let mut need = self.chunk_rows;
        while need > 0 {
            // Drain the pending decoded chunk first.
            if let Some((table, taken)) = self.pending.take() {
                let left = table.len() - taken;
                if left == 0 {
                    // Exhausted; fall through to fetch the next block.
                } else if taken == 0 && left <= need && out.is_none() {
                    // Whole stored chunk fits the request: hand it over
                    // without copying.
                    need -= left;
                    out = Some(table);
                    continue;
                } else {
                    let take = left.min(need);
                    let slice = table.slice(taken, taken + take);
                    match &mut out {
                        Some(o) => o.extend(&slice),
                        None => out = Some(slice),
                    }
                    need -= take;
                    if taken + take < table.len() {
                        self.pending = Some((table, taken + take));
                    }
                    continue;
                }
            }
            if self.next_block >= self.meta.chunk_lens.len() {
                break;
            }
            let table = self.fetch_block(self.next_block)?;
            self.next_block += 1;
            self.pending = Some((table, 0));
        }
        match out {
            Some(t) if !t.is_empty() => {
                self.cursor += t.len() as u64;
                Ok(Some(t))
            }
            _ => Ok(None),
        }
    }

    /// Fetch stored block `idx` with one positioned read and decode every
    /// column. All payload lengths are validated against the block, so a
    /// corrupted directory or payload yields a typed error, not a panic
    /// or a garbage table.
    fn fetch_block(&mut self, idx: usize) -> io::Result<PointTable> {
        let offset = self.block_offsets[idx];
        let len = self.meta.chunk_lens[idx] as usize;
        let rows_before = idx as u64 * self.meta.chunk_rows;
        let n = (self.meta.rows - rows_before).min(self.meta.chunk_rows) as usize;
        let stored_cols = self.meta.stored_cols();
        self.bytes_read += len as u64;

        // Fill scratch with the block, then walk its column entries.
        self.read_at(offset, len)?;
        let t0 = Instant::now();
        let mut at = 0usize;
        let mut next_col = |scratch: &[u8]| -> io::Result<(u8, std::ops::Range<usize>)> {
            if at + 5 > len {
                return Err(
                    FormatError::Corrupt("chunk block ends mid column header".into()).into(),
                );
            }
            let codec = scratch[at];
            let plen = u32::from_le_bytes(scratch[at + 1..at + 5].try_into().unwrap()) as usize;
            if at + 5 + plen > len {
                return Err(FormatError::Corrupt(
                    "column payload runs past its chunk block".into(),
                )
                .into());
            }
            let range = at + 5..at + 5 + plen;
            at += 5 + plen;
            Ok((codec, range))
        };
        let (c, r) = next_col(&self.scratch)?;
        let xs = codec::decode_f64s(c, n, &self.scratch[r])?;
        let (c, r) = next_col(&self.scratch)?;
        let ys = codec::decode_f64s(c, n, &self.scratch[r])?;
        let mut attr_vals = Vec::with_capacity(stored_cols - 2);
        for _ in 2..stored_cols {
            let (c, r) = next_col(&self.scratch)?;
            attr_vals.push(codec::decode_f32s(c, n, &self.scratch[r])?);
        }
        if at != len {
            return Err(FormatError::Corrupt(format!(
                "chunk block has {} trailing bytes after its last column",
                len - at
            ))
            .into());
        }
        let names: Vec<&str> = self.meta.attr_names.iter().map(String::as_str).collect();
        let table = PointTable::from_columns(xs, ys, &names, attr_vals);
        self.decode_time += t0.elapsed();
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_geom::Point;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("raster-data-test-{}-{name}", std::process::id()));
        p
    }

    fn sample(n: usize) -> PointTable {
        let mut t = PointTable::with_capacity(n, &["a", "bb"]);
        for i in 0..n {
            t.push(
                Point::new(i as f64 * 1.5, -(i as f64)),
                &[i as f32, i as f32 * 0.5],
            );
        }
        t
    }

    #[test]
    fn truncated_data_section_rejected_at_open() {
        let path = tmp("truncated.bin");
        let t = sample(500);
        write_table(&path, &t).unwrap();
        // Chop off the last kilobyte of the data section.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 1024]).unwrap();
        let err = match ChunkedReader::open(&path, 100) {
            Err(e) => e,
            Ok(_) => panic!("truncated file must be rejected at open"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_header_rejected() {
        let path = tmp("headerless.bin");
        let t = sample(100);
        write_table(&path, &t).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Keep only the first 10 bytes — mid-magic/rows.
        std::fs::write(&path, &full[..10]).unwrap();
        assert!(ChunkedReader::open(&path, 100).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rows_overclaim_rejected() {
        let path = tmp("overclaim.bin");
        let t = sample(100);
        write_table(&path, &t).unwrap();
        // Inflate the row count in the header (bytes 8..16, little-endian).
        let mut full = std::fs::read(&path).unwrap();
        full[8..16].copy_from_slice(&(1_000_000u64).to_le_bytes());
        std::fs::write(&path, &full).unwrap();
        let err = match ChunkedReader::open(&path, 100) {
            Err(e) => e,
            Ok(_) => panic!("overclaimed row count must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_rejected() {
        let path = tmp("empty.bin");
        std::fs::write(&path, []).unwrap();
        assert!(ChunkedReader::open(&path, 100).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_is_tolerated() {
        // Extra bytes after the data section (e.g. from a crashed append)
        // don't invalidate the declared table.
        let path = tmp("trailing.bin");
        let t = sample(200);
        write_table(&path, &t).unwrap();
        let mut full = std::fs::read(&path).unwrap();
        full.extend_from_slice(&[0xAB; 64]);
        std::fs::write(&path, &full).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_whole_table() {
        let path = tmp("roundtrip.bin");
        let t = sample(1_000);
        write_table(&path, &t).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_read_reassembles_table() {
        let path = tmp("chunks.bin");
        let t = sample(1_003); // deliberately not a multiple of the chunk
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        assert_eq!(r.meta().rows, 1_003);
        assert_eq!(r.meta().attr_names, vec!["a", "bb"]);
        let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
        let mut chunks = 0;
        while let Some(c) = r.next_chunk().unwrap() {
            assert!(c.len() <= 100);
            whole.extend(&c);
            chunks += 1;
        }
        assert_eq!(chunks, 11);
        assert_eq!(whole, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_size_can_change_mid_scan() {
        // The streaming executor reads a small sample chunk, then switches
        // to the planner-chosen chunk size without re-reading.
        let path = tmp("rechunk.bin");
        let t = sample(1_000);
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 64).unwrap();
        let first = r.next_chunk().unwrap().unwrap();
        assert_eq!(first.len(), 64);
        assert_eq!(r.cursor(), 64);
        r.set_chunk_rows(400);
        let mut whole = first;
        while let Some(c) = r.next_chunk().unwrap() {
            assert!(c.len() <= 400);
            whole.extend(&c);
        }
        assert_eq!(whole, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table_meta_reads_header_and_validates() {
        let path = tmp("meta-only.bin");
        let t = sample(321);
        write_table(&path, &t).unwrap();
        let meta = table_meta(&path).unwrap();
        assert_eq!(meta.rows, 321);
        assert_eq!(meta.attr_names, vec!["a", "bb"]);
        // Truncation is caught at the header read, like open().
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 100]).unwrap();
        assert!(table_meta(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("bad.bin");
        std::fs::write(&path, [0u8; 64]).unwrap();
        let err = match ChunkedReader::open(&path, 10) {
            Err(e) => e,
            Ok(_) => panic!("bad magic must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table_roundtrips() {
        let path = tmp("empty.bin");
        let t = PointTable::with_capacity(0, &["x"]);
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 10).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.next_chunk().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_roundtrip_whole_table() {
        let path = tmp("z-roundtrip.binz");
        let t = sample(2_500);
        write_table_compressed(&path, &t, 700).unwrap();
        let meta = table_meta(&path).unwrap();
        assert_eq!(meta.version(), 2);
        assert!(meta.is_compressed());
        assert_eq!(meta.file_bytes(), std::fs::metadata(&path).unwrap().len());
        let back = read_table(&path).unwrap();
        assert_eq!(t, back);
        // The sample's integer-ish columns compress: fewer stored than
        // logical bytes.
        assert!(meta.scan_bytes() < t.len() as u64 * meta.row_bytes() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_chunked_read_matches_raw_at_any_delivery_size() {
        // Delivery chunk sizes that undershoot, straddle and overshoot
        // the 400-row stored chunks must all reassemble the same table.
        let path = tmp("z-chunks.binz");
        let t = sample(1_003);
        write_table_compressed(&path, &t, 400).unwrap();
        for delivery in [1usize, 7, 399, 400, 401, 1000, 5000] {
            let mut r = ChunkedReader::open(&path, delivery).unwrap();
            let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
            while let Some(c) = r.next_chunk().unwrap() {
                assert!(c.len() <= delivery);
                whole.extend(&c);
            }
            assert_eq!(whole, t, "delivery chunk {delivery}");
            assert_eq!(r.bytes_read(), r.meta().scan_bytes());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_chunk_size_can_change_mid_scan() {
        let path = tmp("z-rechunk.binz");
        let t = sample(1_000);
        write_table_compressed(&path, &t, 256).unwrap();
        let mut r = ChunkedReader::open(&path, 64).unwrap();
        let first = r.next_chunk().unwrap().unwrap();
        assert_eq!(first.len(), 64);
        r.set_chunk_rows(333);
        let mut whole = first;
        while let Some(c) = r.next_chunk().unwrap() {
            assert!(c.len() <= 333);
            whole.extend(&c);
        }
        assert_eq!(whole, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_empty_table_roundtrips() {
        let path = tmp("z-empty.binz");
        let t = PointTable::with_capacity(0, &["x"]);
        write_table_compressed(&path, &t, 100).unwrap();
        let mut r = ChunkedReader::open(&path, 10).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.next_chunk().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_yields_typed_bad_magic() {
        let path = tmp("foreign.bin");
        std::fs::write(&path, b"PARQUET1_not_really_a_table_file_____").unwrap();
        let err = ChunkedReader::open(&path, 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(FormatError::of(&err), Some(&FormatError::BadMagic));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newer_version_yields_typed_unsupported() {
        // "RJPTBL03" — our prefix, a future version byte.
        let path = tmp("future.bin");
        let mut bytes = (MAGIC_V2 + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 56]);
        std::fs::write(&path, &bytes).unwrap();
        let err = ChunkedReader::open(&path, 10).unwrap_err();
        assert_eq!(
            FormatError::of(&err),
            Some(&FormatError::UnsupportedVersion(3))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_compressed_file_rejected_at_open() {
        let path = tmp("z-truncated.binz");
        let t = sample(2_000);
        write_table_compressed(&path, &t, 512).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 200]).unwrap();
        let err = ChunkedReader::open(&path, 100).unwrap_err();
        assert!(
            matches!(FormatError::of(&err), Some(FormatError::Truncated { .. })),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_compressed_payload_is_an_error_not_garbage() {
        // Flip bytes inside the first block's first column header so the
        // payload length disagrees with the block — the reader must
        // return a typed error instead of panicking or decoding garbage.
        let path = tmp("z-corrupt.binz");
        let t = sample(1_000);
        write_table_compressed(&path, &t, 512).unwrap();
        let clean = std::fs::read(&path).unwrap();
        let meta = table_meta(&path).unwrap();
        let header = (clean.len() as u64 - meta.scan_bytes()) as usize;

        // Corrupt the codec id of the first column.
        let mut bad = clean.clone();
        bad[header] = 99;
        std::fs::write(&path, &bad).unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        let err = r.next_chunk().unwrap_err();
        assert!(
            matches!(FormatError::of(&err), Some(FormatError::Corrupt(_))),
            "{err}"
        );

        // Corrupt the payload length so it runs past the block.
        let mut bad = clean.clone();
        bad[header + 1..header + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        assert!(r.next_chunk().is_err());

        // Corrupt the chunk directory count.
        let mut bad = clean.clone();
        let ndir = header - meta.chunk_lens.len() * 8 - 4;
        bad[ndir..ndir + 4].copy_from_slice(&1_000u32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            FormatError::of(&ChunkedReader::open(&path, 100).unwrap_err()),
            Some(FormatError::Corrupt(_))
        ));

        // Oversized directory entry (u64::MAX): must be a typed error at
        // open, not an arithmetic overflow or a giant allocation later.
        let mut bad = clean;
        let dir0 = header - meta.chunk_lens.len() * 8;
        bad[dir0..dir0 + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            FormatError::of(&ChunkedReader::open(&path, 100).unwrap_err()),
            Some(FormatError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_file_bytes_matches_reality() {
        let path = tmp("meta.bin");
        let t = sample(17);
        write_table(&path, &t).unwrap();
        let r = ChunkedReader::open(&path, 5).unwrap();
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert_eq!(r.meta().file_bytes(), on_disk);
        std::fs::remove_file(&path).ok();
    }
}
