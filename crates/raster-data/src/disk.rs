//! Binary columnar on-disk format with a chunked out-of-core reader.
//!
//! The paper stores both data sets as binary columns on disk (§7.1) and,
//! for the disk-resident experiment (§7.7 / Fig. 13), "simply reads data
//! from disk as and when required to transfer to the GPU" without parallel
//! prefetching. This module mirrors that: a self-describing little-endian
//! columnar file plus [`ChunkedReader`], which streams fixed-size record
//! batches so a query never holds more than one chunk in memory. (The
//! prefetching streaming executor that overlaps these reads with join
//! processing lives in `raster-join::stream`.)
//!
//! Each chunk is read with one *positioned* read per column
//! (`pread`-style on Unix), issued in ascending file-offset order; when a
//! single chunk covers the whole remainder — the `read_table` whole-file
//! load — this degenerates to one sequential pass over the data section.
//! Column bytes are decoded straight into the final column `Vec`s
//! ([`PointTable::from_columns`]) through one reused scratch buffer, so a
//! chunk allocates exactly its own storage plus one column of bytes.
//!
//! Layout (little-endian):
//! ```text
//! magic  u64   = 0x524a5054424c3031 ("RJPTBL01")
//! rows   u64
//! ncols  u32
//! per column: name_len u32, name bytes (UTF-8)
//! xs     rows × f64
//! ys     rows × f64
//! per column: rows × f32
//! ```

use crate::table::PointTable;
use bytes::{Buf, BufMut, BytesMut};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: u64 = 0x524a_5054_424c_3031;

/// Serialize a table to the columnar format.
pub fn write_table(path: &Path, table: &PointTable) -> io::Result<()> {
    let f = File::create(path)?;
    let mut w = BufWriter::new(f);
    let mut header = BytesMut::new();
    header.put_u64_le(MAGIC);
    header.put_u64_le(table.len() as u64);
    header.put_u32_le(table.attr_count() as u32);
    for name in table.attr_names() {
        header.put_u32_le(name.len() as u32);
        header.put_slice(name.as_bytes());
    }
    w.write_all(&header)?;

    let mut buf = BytesMut::with_capacity(table.len() * 8);
    for &x in table.xs() {
        buf.put_f64_le(x);
    }
    w.write_all(&buf)?;
    buf.clear();
    for &y in table.ys() {
        buf.put_f64_le(y);
    }
    w.write_all(&buf)?;
    for c in 0..table.attr_count() {
        buf.clear();
        for &v in table.attr(c) {
            buf.put_f32_le(v);
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// File metadata read from the header.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub rows: u64,
    pub attr_names: Vec<String>,
    header_bytes: u64,
}

impl TableMeta {
    fn col_count(&self) -> usize {
        self.attr_names.len()
    }

    fn xs_offset(&self) -> u64 {
        self.header_bytes
    }

    fn ys_offset(&self) -> u64 {
        self.xs_offset() + self.rows * 8
    }

    fn attr_offset(&self, c: usize) -> u64 {
        self.ys_offset() + self.rows * 8 + (c as u64) * self.rows * 4
    }

    /// Total file size implied by the header.
    pub fn file_bytes(&self) -> u64 {
        self.attr_offset(self.col_count())
    }
}

fn read_meta<R: Read>(r: &mut R) -> io::Result<TableMeta> {
    let mut fixed = [0u8; 20];
    r.read_exact(&mut fixed)?;
    let mut b = &fixed[..];
    let magic = b.get_u64_le();
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let rows = b.get_u64_le();
    let ncols = b.get_u32_le();
    let mut names = Vec::with_capacity(ncols as usize);
    let mut header_bytes = 20u64;
    for _ in 0..ncols {
        let mut lenb = [0u8; 4];
        r.read_exact(&mut lenb)?;
        let len = u32::from_le_bytes(lenb) as usize;
        let mut name = vec![0u8; len];
        r.read_exact(&mut name)?;
        header_bytes += 4 + len as u64;
        names.push(
            String::from_utf8(name)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF8 column name"))?,
        );
    }
    Ok(TableMeta {
        rows,
        attr_names: names,
        header_bytes,
    })
}

/// Load the whole file into memory (the in-memory experiments). Single
/// sequential pass over the data section, decoded column-wise.
pub fn read_table(path: &Path) -> io::Result<PointTable> {
    let mut reader = ChunkedReader::open(path, usize::MAX)?;
    reader
        .next_chunk()?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "empty table file"))
}

/// Read just the header of a columnar table file (schema discovery for
/// the SQL `FROM 'path.bin'` source and the streaming planner), with the
/// same truncation validation as [`ChunkedReader::open`].
pub fn table_meta(path: &Path) -> io::Result<TableMeta> {
    let mut f = File::open(path)?;
    let actual_bytes = f.metadata()?.len();
    let meta = read_meta(&mut f)?;
    validate_size(&meta, actual_bytes)?;
    Ok(meta)
}

fn validate_size(meta: &TableMeta, actual_bytes: u64) -> io::Result<()> {
    // Fail fast on truncated or inconsistent files: a header claiming
    // more data than the file holds would otherwise surface as an
    // UnexpectedEof deep inside a chunked scan (possibly hours into
    // the §7.7 disk-resident experiment).
    if actual_bytes < meta.file_bytes() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "table file truncated: header implies {} bytes, file has {}",
                meta.file_bytes(),
                actual_bytes
            ),
        ));
    }
    Ok(())
}

/// Streams record batches of at most `chunk_rows` from a columnar file.
pub struct ChunkedReader {
    file: File,
    meta: TableMeta,
    cursor: u64,
    chunk_rows: usize,
    /// Reused raw-byte buffer: one column of the current chunk at a time
    /// is decoded through it, so a chunk's footprint is its own columns
    /// plus this single scratch allocation.
    scratch: Vec<u8>,
}

impl ChunkedReader {
    pub fn open(path: &Path, chunk_rows: usize) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let actual_bytes = file.metadata()?.len();
        let meta = read_meta(&mut file)?;
        validate_size(&meta, actual_bytes)?;
        Ok(ChunkedReader {
            file,
            meta,
            cursor: 0,
            chunk_rows: chunk_rows.max(1),
            scratch: Vec::new(),
        })
    }

    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// Rows already consumed.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Rows remaining to be read.
    pub fn remaining(&self) -> u64 {
        self.meta.rows - self.cursor
    }

    /// Change the chunk size for subsequent [`Self::next_chunk`] calls.
    /// The streaming executor samples the first (small) chunk to summarise
    /// the workload, then switches to the planner-chosen chunk size
    /// without re-reading.
    pub fn set_chunk_rows(&mut self, chunk_rows: usize) {
        self.chunk_rows = chunk_rows.max(1);
    }

    /// Positioned read: does not move any shared cursor and keeps no
    /// buffered readahead to discard, so per-column jumps cost exactly one
    /// `pread` each (the old `BufReader` + `SeekFrom::Start` pairing threw
    /// its buffer away on every column of every chunk).
    #[cfg(unix)]
    fn read_at(&mut self, offset: u64, len: usize) -> io::Result<&[u8]> {
        use std::os::unix::fs::FileExt;
        self.scratch.resize(len, 0);
        self.file.read_exact_at(&mut self.scratch[..len], offset)?;
        Ok(&self.scratch[..len])
    }

    /// Fallback for targets without positioned reads: a raw seek on the
    /// unbuffered handle (still no readahead buffer to discard).
    #[cfg(not(unix))]
    fn read_at(&mut self, offset: u64, len: usize) -> io::Result<&[u8]> {
        use std::io::{Seek, SeekFrom};
        self.scratch.resize(len, 0);
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(&mut self.scratch[..len])?;
        Ok(&self.scratch[..len])
    }

    /// Read the next chunk, or `None` at end of data. One positioned read
    /// per column in ascending offset order; when the chunk covers the
    /// whole remainder this is a single sequential pass over the rest of
    /// the file.
    pub fn next_chunk(&mut self) -> io::Result<Option<PointTable>> {
        if self.cursor >= self.meta.rows {
            return Ok(None);
        }
        let n = (self.meta.rows - self.cursor).min(self.chunk_rows as u64) as usize;

        let raw = self.read_at(self.meta.xs_offset() + self.cursor * 8, n * 8)?;
        let xs: Vec<f64> = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let raw = self.read_at(self.meta.ys_offset() + self.cursor * 8, n * 8)?;
        let ys: Vec<f64> = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();

        let mut attr_vals: Vec<Vec<f32>> = Vec::with_capacity(self.meta.col_count());
        for c in 0..self.meta.col_count() {
            let raw = self.read_at(self.meta.attr_offset(c) + self.cursor * 4, n * 4)?;
            attr_vals.push(
                raw.chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            );
        }

        let names: Vec<&str> = self.meta.attr_names.iter().map(String::as_str).collect();
        self.cursor += n as u64;
        Ok(Some(PointTable::from_columns(xs, ys, &names, attr_vals)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_geom::Point;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("raster-data-test-{}-{name}", std::process::id()));
        p
    }

    fn sample(n: usize) -> PointTable {
        let mut t = PointTable::with_capacity(n, &["a", "bb"]);
        for i in 0..n {
            t.push(
                Point::new(i as f64 * 1.5, -(i as f64)),
                &[i as f32, i as f32 * 0.5],
            );
        }
        t
    }

    #[test]
    fn truncated_data_section_rejected_at_open() {
        let path = tmp("truncated.bin");
        let t = sample(500);
        write_table(&path, &t).unwrap();
        // Chop off the last kilobyte of the data section.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 1024]).unwrap();
        let err = match ChunkedReader::open(&path, 100) {
            Err(e) => e,
            Ok(_) => panic!("truncated file must be rejected at open"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_header_rejected() {
        let path = tmp("headerless.bin");
        let t = sample(100);
        write_table(&path, &t).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Keep only the first 10 bytes — mid-magic/rows.
        std::fs::write(&path, &full[..10]).unwrap();
        assert!(ChunkedReader::open(&path, 100).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rows_overclaim_rejected() {
        let path = tmp("overclaim.bin");
        let t = sample(100);
        write_table(&path, &t).unwrap();
        // Inflate the row count in the header (bytes 8..16, little-endian).
        let mut full = std::fs::read(&path).unwrap();
        full[8..16].copy_from_slice(&(1_000_000u64).to_le_bytes());
        std::fs::write(&path, &full).unwrap();
        let err = match ChunkedReader::open(&path, 100) {
            Err(e) => e,
            Ok(_) => panic!("overclaimed row count must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_rejected() {
        let path = tmp("empty.bin");
        std::fs::write(&path, []).unwrap();
        assert!(ChunkedReader::open(&path, 100).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_is_tolerated() {
        // Extra bytes after the data section (e.g. from a crashed append)
        // don't invalidate the declared table.
        let path = tmp("trailing.bin");
        let t = sample(200);
        write_table(&path, &t).unwrap();
        let mut full = std::fs::read(&path).unwrap();
        full.extend_from_slice(&[0xAB; 64]);
        std::fs::write(&path, &full).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_whole_table() {
        let path = tmp("roundtrip.bin");
        let t = sample(1_000);
        write_table(&path, &t).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_read_reassembles_table() {
        let path = tmp("chunks.bin");
        let t = sample(1_003); // deliberately not a multiple of the chunk
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        assert_eq!(r.meta().rows, 1_003);
        assert_eq!(r.meta().attr_names, vec!["a", "bb"]);
        let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
        let mut chunks = 0;
        while let Some(c) = r.next_chunk().unwrap() {
            assert!(c.len() <= 100);
            whole.extend(&c);
            chunks += 1;
        }
        assert_eq!(chunks, 11);
        assert_eq!(whole, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_size_can_change_mid_scan() {
        // The streaming executor reads a small sample chunk, then switches
        // to the planner-chosen chunk size without re-reading.
        let path = tmp("rechunk.bin");
        let t = sample(1_000);
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 64).unwrap();
        let first = r.next_chunk().unwrap().unwrap();
        assert_eq!(first.len(), 64);
        assert_eq!(r.cursor(), 64);
        r.set_chunk_rows(400);
        let mut whole = first;
        while let Some(c) = r.next_chunk().unwrap() {
            assert!(c.len() <= 400);
            whole.extend(&c);
        }
        assert_eq!(whole, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table_meta_reads_header_and_validates() {
        let path = tmp("meta-only.bin");
        let t = sample(321);
        write_table(&path, &t).unwrap();
        let meta = table_meta(&path).unwrap();
        assert_eq!(meta.rows, 321);
        assert_eq!(meta.attr_names, vec!["a", "bb"]);
        // Truncation is caught at the header read, like open().
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 100]).unwrap();
        assert!(table_meta(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("bad.bin");
        std::fs::write(&path, [0u8; 64]).unwrap();
        let err = match ChunkedReader::open(&path, 10) {
            Err(e) => e,
            Ok(_) => panic!("bad magic must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table_roundtrips() {
        let path = tmp("empty.bin");
        let t = PointTable::with_capacity(0, &["x"]);
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 10).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.next_chunk().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_file_bytes_matches_reality() {
        let path = tmp("meta.bin");
        let t = sample(17);
        write_table(&path, &t).unwrap();
        let r = ChunkedReader::open(&path, 5).unwrap();
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert_eq!(r.meta().file_bytes(), on_disk);
        std::fs::remove_file(&path).ok();
    }
}
