//! Binary columnar on-disk format with a chunked out-of-core reader.
//!
//! The paper stores both data sets as binary columns on disk (§7.1) and,
//! for the disk-resident experiment (§7.7 / Fig. 13), "simply reads data
//! from disk as and when required to transfer to the GPU" without parallel
//! prefetching. This module mirrors that: a self-describing little-endian
//! columnar file plus [`ChunkedReader`], which streams fixed-size record
//! batches so a query never holds more than one chunk in memory.
//!
//! Layout (little-endian):
//! ```text
//! magic  u64   = 0x524a5054424c3031 ("RJPTBL01")
//! rows   u64
//! ncols  u32
//! per column: name_len u32, name bytes (UTF-8)
//! xs     rows × f64
//! ys     rows × f64
//! per column: rows × f32
//! ```

use crate::table::PointTable;
use bytes::{Buf, BufMut, BytesMut};
use raster_geom::Point;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: u64 = 0x524a_5054_424c_3031;

/// Serialize a table to the columnar format.
pub fn write_table(path: &Path, table: &PointTable) -> io::Result<()> {
    let f = File::create(path)?;
    let mut w = BufWriter::new(f);
    let mut header = BytesMut::new();
    header.put_u64_le(MAGIC);
    header.put_u64_le(table.len() as u64);
    header.put_u32_le(table.attr_count() as u32);
    for name in table.attr_names() {
        header.put_u32_le(name.len() as u32);
        header.put_slice(name.as_bytes());
    }
    w.write_all(&header)?;

    let mut buf = BytesMut::with_capacity(table.len() * 8);
    for &x in table.xs() {
        buf.put_f64_le(x);
    }
    w.write_all(&buf)?;
    buf.clear();
    for &y in table.ys() {
        buf.put_f64_le(y);
    }
    w.write_all(&buf)?;
    for c in 0..table.attr_count() {
        buf.clear();
        for &v in table.attr(c) {
            buf.put_f32_le(v);
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// File metadata read from the header.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub rows: u64,
    pub attr_names: Vec<String>,
    header_bytes: u64,
}

impl TableMeta {
    fn col_count(&self) -> usize {
        self.attr_names.len()
    }

    fn xs_offset(&self) -> u64 {
        self.header_bytes
    }

    fn ys_offset(&self) -> u64 {
        self.xs_offset() + self.rows * 8
    }

    fn attr_offset(&self, c: usize) -> u64 {
        self.ys_offset() + self.rows * 8 + (c as u64) * self.rows * 4
    }

    /// Total file size implied by the header.
    pub fn file_bytes(&self) -> u64 {
        self.attr_offset(self.col_count())
    }
}

fn read_meta<R: Read>(r: &mut R) -> io::Result<TableMeta> {
    let mut fixed = [0u8; 20];
    r.read_exact(&mut fixed)?;
    let mut b = &fixed[..];
    let magic = b.get_u64_le();
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let rows = b.get_u64_le();
    let ncols = b.get_u32_le();
    let mut names = Vec::with_capacity(ncols as usize);
    let mut header_bytes = 20u64;
    for _ in 0..ncols {
        let mut lenb = [0u8; 4];
        r.read_exact(&mut lenb)?;
        let len = u32::from_le_bytes(lenb) as usize;
        let mut name = vec![0u8; len];
        r.read_exact(&mut name)?;
        header_bytes += 4 + len as u64;
        names.push(
            String::from_utf8(name)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF8 column name"))?,
        );
    }
    Ok(TableMeta {
        rows,
        attr_names: names,
        header_bytes,
    })
}

/// Load the whole file into memory (the in-memory experiments).
pub fn read_table(path: &Path) -> io::Result<PointTable> {
    let mut reader = ChunkedReader::open(path, usize::MAX)?;
    reader
        .next_chunk()?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "empty table file"))
}

/// Streams record batches of at most `chunk_rows` from a columnar file.
pub struct ChunkedReader {
    file: BufReader<File>,
    meta: TableMeta,
    cursor: u64,
    chunk_rows: usize,
}

impl ChunkedReader {
    pub fn open(path: &Path, chunk_rows: usize) -> io::Result<Self> {
        let f = File::open(path)?;
        let actual_bytes = f.metadata()?.len();
        let mut file = BufReader::new(f);
        let meta = read_meta(&mut file)?;
        // Fail fast on truncated or inconsistent files: a header claiming
        // more data than the file holds would otherwise surface as an
        // UnexpectedEof deep inside a chunked scan (possibly hours into
        // the §7.7 disk-resident experiment).
        if actual_bytes < meta.file_bytes() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "table file truncated: header implies {} bytes, file has {}",
                    meta.file_bytes(),
                    actual_bytes
                ),
            ));
        }
        Ok(ChunkedReader {
            file,
            meta,
            cursor: 0,
            chunk_rows: chunk_rows.max(1),
        })
    }

    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// Rows remaining to be read.
    pub fn remaining(&self) -> u64 {
        self.meta.rows - self.cursor
    }

    /// Read the next chunk, or `None` at end of data. Each call performs
    /// one seek+read per column, as a columnar scan does.
    pub fn next_chunk(&mut self) -> io::Result<Option<PointTable>> {
        if self.cursor >= self.meta.rows {
            return Ok(None);
        }
        let n = (self.meta.rows - self.cursor).min(self.chunk_rows as u64) as usize;

        let read_f64 = |offset: u64, file: &mut BufReader<File>| -> io::Result<Vec<f64>> {
            file.seek(SeekFrom::Start(offset))?;
            let mut raw = vec![0u8; n * 8];
            file.read_exact(&mut raw)?;
            Ok(raw
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect())
        };
        let xs = read_f64(self.meta.xs_offset() + self.cursor * 8, &mut self.file)?;
        let ys = read_f64(self.meta.ys_offset() + self.cursor * 8, &mut self.file)?;

        let mut attr_vals: Vec<Vec<f32>> = Vec::with_capacity(self.meta.col_count());
        for c in 0..self.meta.col_count() {
            self.file
                .seek(SeekFrom::Start(self.meta.attr_offset(c) + self.cursor * 4))?;
            let mut raw = vec![0u8; n * 4];
            self.file.read_exact(&mut raw)?;
            attr_vals.push(
                raw.chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            );
        }

        let names: Vec<&str> = self.meta.attr_names.iter().map(String::as_str).collect();
        let mut t = PointTable::with_capacity(n, &names);
        let mut row_attrs = vec![0f32; self.meta.col_count()];
        for i in 0..n {
            for (c, vals) in attr_vals.iter().enumerate() {
                row_attrs[c] = vals[i];
            }
            t.push(Point::new(xs[i], ys[i]), &row_attrs);
        }
        self.cursor += n as u64;
        Ok(Some(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("raster-data-test-{}-{name}", std::process::id()));
        p
    }

    fn sample(n: usize) -> PointTable {
        let mut t = PointTable::with_capacity(n, &["a", "bb"]);
        for i in 0..n {
            t.push(
                Point::new(i as f64 * 1.5, -(i as f64)),
                &[i as f32, i as f32 * 0.5],
            );
        }
        t
    }

    #[test]
    fn truncated_data_section_rejected_at_open() {
        let path = tmp("truncated.bin");
        let t = sample(500);
        write_table(&path, &t).unwrap();
        // Chop off the last kilobyte of the data section.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 1024]).unwrap();
        let err = match ChunkedReader::open(&path, 100) {
            Err(e) => e,
            Ok(_) => panic!("truncated file must be rejected at open"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_header_rejected() {
        let path = tmp("headerless.bin");
        let t = sample(100);
        write_table(&path, &t).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Keep only the first 10 bytes — mid-magic/rows.
        std::fs::write(&path, &full[..10]).unwrap();
        assert!(ChunkedReader::open(&path, 100).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rows_overclaim_rejected() {
        let path = tmp("overclaim.bin");
        let t = sample(100);
        write_table(&path, &t).unwrap();
        // Inflate the row count in the header (bytes 8..16, little-endian).
        let mut full = std::fs::read(&path).unwrap();
        full[8..16].copy_from_slice(&(1_000_000u64).to_le_bytes());
        std::fs::write(&path, &full).unwrap();
        let err = match ChunkedReader::open(&path, 100) {
            Err(e) => e,
            Ok(_) => panic!("overclaimed row count must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_rejected() {
        let path = tmp("empty.bin");
        std::fs::write(&path, []).unwrap();
        assert!(ChunkedReader::open(&path, 100).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_is_tolerated() {
        // Extra bytes after the data section (e.g. from a crashed append)
        // don't invalidate the declared table.
        let path = tmp("trailing.bin");
        let t = sample(200);
        write_table(&path, &t).unwrap();
        let mut full = std::fs::read(&path).unwrap();
        full.extend_from_slice(&[0xAB; 64]);
        std::fs::write(&path, &full).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_whole_table() {
        let path = tmp("roundtrip.bin");
        let t = sample(1_000);
        write_table(&path, &t).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_read_reassembles_table() {
        let path = tmp("chunks.bin");
        let t = sample(1_003); // deliberately not a multiple of the chunk
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        assert_eq!(r.meta().rows, 1_003);
        assert_eq!(r.meta().attr_names, vec!["a", "bb"]);
        let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
        let mut chunks = 0;
        while let Some(c) = r.next_chunk().unwrap() {
            assert!(c.len() <= 100);
            whole.extend(&c);
            chunks += 1;
        }
        assert_eq!(chunks, 11);
        assert_eq!(whole, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("bad.bin");
        std::fs::write(&path, [0u8; 64]).unwrap();
        let err = match ChunkedReader::open(&path, 10) {
            Err(e) => e,
            Ok(_) => panic!("bad magic must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table_roundtrips() {
        let path = tmp("empty.bin");
        let t = PointTable::with_capacity(0, &["x"]);
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 10).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.next_chunk().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_file_bytes_matches_reality() {
        let path = tmp("meta.bin");
        let t = sample(17);
        write_table(&path, &t).unwrap();
        let r = ChunkedReader::open(&path, 5).unwrap();
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert_eq!(r.meta().file_bytes(), on_disk);
        std::fs::remove_file(&path).ok();
    }
}
