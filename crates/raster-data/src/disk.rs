//! Binary columnar on-disk format with a chunked out-of-core reader.
//!
//! The paper stores both data sets as binary columns on disk (§7.1) and,
//! for the disk-resident experiment (§7.7 / Fig. 13), "simply reads data
//! from disk as and when required to transfer to the GPU" without parallel
//! prefetching. This module mirrors that: a self-describing little-endian
//! columnar file plus [`ChunkedReader`], which streams fixed-size record
//! batches so a query never holds more than one chunk in memory. (The
//! prefetching streaming executor that overlaps these reads with join
//! processing lives in `raster-join::stream`.)
//!
//! Three format versions share the magic prefix and differ in the
//! trailing version byte (see [`crate::codec`] for the full v2/v3 layout
//! and the forward-compat rule):
//!
//! * **v1** (`RJPTBL01`, [`write_table`]) — raw contiguous columns. Each
//!   chunk is read with one *positioned* read per column (`pread`-style
//!   on Unix), issued in ascending file-offset order; when a single chunk
//!   covers the whole remainder — the `read_table` whole-file load — this
//!   degenerates to one sequential pass over the data section. Column
//!   bytes are decoded straight into the final column `Vec`s
//!   ([`PointTable::from_columns`]) through one reused scratch buffer.
//! * **v2** (`RJPTBL02`, [`write_table_compressed_v2`]) — chunked
//!   compressed columns: the data section is a sequence of stored-chunk
//!   blocks, each holding every column of its row range encoded with the
//!   per-chunk codec choice of [`crate::codec`]. A block is fetched with
//!   a single positioned read and decoded column-wise; [`ChunkedReader`]
//!   re-slices stored chunks to whatever delivery chunk size the caller
//!   asked for, so v1 and v2 files behave identically above this module.
//! * **v3** (`RJPTBL03`, [`write_table_compressed`]) — v2's blocks behind
//!   a *per-column* chunk directory: the header records the encoded byte
//!   length of every column entry of every stored chunk, so the reader
//!   can address any single column's bytes with one positioned read.
//!
//! # Pruned reads (projection pushdown)
//!
//! [`ChunkedReader::open_projected`] takes the set of attribute columns a
//! query actually touches and materializes only those (the coordinate
//! columns are always read). The bytes of pruned-away columns never leave
//! the disk where the format allows it:
//!
//! * v1: the per-column positioned reads simply skip pruned columns;
//! * v3: the per-column directory turns each needed column entry into its
//!   own positioned read (adjacent needed entries coalesce into one);
//! * v2: blocks are only addressable whole, so the reader fetches the
//!   full block but *skips the decode* of pruned columns — a post-decode
//!   projection, byte-identical in results, saving CPU but not I/O.
//!
//! Delivered chunks hold exactly the projected columns (in stored order),
//! and [`ChunkedReader::column_io`] attributes bytes read and decode time
//! to every stored column, so pruning wins are visible per column. File
//! validation is projection-aware: a file truncated inside pruned-away
//! trailing bytes still serves the projected scan.
//!
//! Structural defects (foreign magic, newer version, truncation,
//! undecodable payloads) surface as [`FormatError`] wrapped in an
//! `InvalidData` [`io::Error`] — recover the typed value with
//! [`FormatError::of`].
//!
//! v1 layout (little-endian):
//! ```text
//! magic  u64   = 0x524a5054424c3031 ("RJPTBL01")
//! rows   u64
//! ncols  u32
//! per column: name_len u32, name bytes (UTF-8)
//! xs     rows × f64
//! ys     rows × f64
//! per column: rows × f32
//! ```

use crate::codec::{self, FormatError};
use crate::faults;
use crate::table::PointTable;
use bytes::{Buf, BufMut, BytesMut};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAGIC: u64 = 0x524a_5054_424c_3031;
const MAGIC_V2: u64 = 0x524a_5054_424c_3032;
const MAGIC_V3: u64 = 0x524a_5054_424c_3033;
/// The shared `RJPTBL0` prefix; the low byte is the ASCII version digit.
const MAGIC_PREFIX: u64 = 0x524a_5054_424c_3000;

/// Default stored-chunk granularity of [`write_table_compressed`]: large
/// enough that per-column headers are noise and the FOR/XOR probes see
/// representative value ranges, small enough that one decoded block is a
/// few MB.
pub const DEFAULT_COMPRESSED_CHUNK_ROWS: usize = 1 << 18;

/// Serialize a table to the columnar format.
pub fn write_table(path: &Path, table: &PointTable) -> io::Result<()> {
    let f = File::create(path)?;
    let mut w = BufWriter::new(f);
    let mut header = BytesMut::new();
    header.put_u64_le(MAGIC);
    header.put_u64_le(table.len() as u64);
    header.put_u32_le(table.attr_count() as u32);
    for name in table.attr_names() {
        header.put_u32_le(name.len() as u32);
        header.put_slice(name.as_bytes());
    }
    w.write_all(&header)?;

    let mut buf = BytesMut::with_capacity(table.len() * 8);
    for &x in table.xs() {
        buf.put_f64_le(x);
    }
    w.write_all(&buf)?;
    buf.clear();
    for &y in table.ys() {
        buf.put_f64_le(y);
    }
    w.write_all(&buf)?;
    for c in 0..table.attr_count() {
        buf.clear();
        for &v in table.attr(c) {
            buf.put_f32_le(v);
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Serialize a table to the compressed chunked format (v3): every column
/// of every `chunk_rows`-row stored chunk is encoded with the smallest
/// applicable codec ([`crate::codec`]) and indexed by a *per-column*
/// directory in the header, so the reader can fetch any block — or any
/// single column of any block, for pruned scans — with one positioned
/// read.
///
/// Blocks are encoded and written one at a time — peak extra memory is a
/// single encoded block, not the whole compressed file — and the header's
/// chunk directory (whose lengths are only known afterwards) is
/// back-patched with one positioned write at the end.
pub fn write_table_compressed(
    path: &Path,
    table: &PointTable,
    chunk_rows: usize,
) -> io::Result<()> {
    write_compressed_impl(path, table, chunk_rows, true)
}

/// Serialize with the legacy v2 layout: identical blocks, but the header
/// directory records only whole-block lengths, so a pruned scan must
/// fetch full blocks and project after decode. Kept so the v2 read path
/// stays covered and older files stay reproducible; new files should use
/// [`write_table_compressed`].
pub fn write_table_compressed_v2(
    path: &Path,
    table: &PointTable,
    chunk_rows: usize,
) -> io::Result<()> {
    write_compressed_impl(path, table, chunk_rows, false)
}

fn write_compressed_impl(
    path: &Path,
    table: &PointTable,
    chunk_rows: usize,
    per_column_directory: bool,
) -> io::Result<()> {
    let chunk_rows = chunk_rows.max(1);
    let n_chunks = table.len().div_ceil(chunk_rows);
    let stored_cols = 2 + table.attr_count();

    let f = File::create(path)?;
    let mut w = BufWriter::new(f);
    let mut header = BytesMut::new();
    header.put_u64_le(if per_column_directory {
        MAGIC_V3
    } else {
        MAGIC_V2
    });
    header.put_u64_le(table.len() as u64);
    header.put_u32_le(table.attr_count() as u32);
    for name in table.attr_names() {
        header.put_u32_le(name.len() as u32);
        header.put_slice(name.as_bytes());
    }
    header.put_u64_le(chunk_rows as u64);
    header.put_u32_le(n_chunks as u32);
    let dir_offset = header.len() as u64;
    let dir_bytes = if per_column_directory {
        n_chunks * stored_cols * 4
    } else {
        n_chunks * 8
    };
    header.put_slice(&vec![0u8; dir_bytes]); // directory placeholder, patched below
    w.write_all(&header)?;

    let mut dir = BytesMut::with_capacity(dir_bytes);
    let mut block = Vec::new();
    let mut start = 0usize;
    while start < table.len() {
        let end = (start + chunk_rows).min(table.len());
        block.clear();
        let mut entry_lens: Vec<u32> = Vec::with_capacity(stored_cols);
        let mut put = |col: codec::EncodedColumn| {
            entry_lens.push(5 + col.bytes.len() as u32);
            block.push(col.codec);
            block.extend_from_slice(&(col.bytes.len() as u32).to_le_bytes());
            block.extend_from_slice(&col.bytes);
        };
        put(codec::encode_f64s(&table.xs()[start..end]));
        put(codec::encode_f64s(&table.ys()[start..end]));
        for c in 0..table.attr_count() {
            put(codec::encode_f32s(&table.attr(c)[start..end]));
        }
        w.write_all(&block)?;
        if per_column_directory {
            for &l in &entry_lens {
                dir.put_u32_le(l);
            }
        } else {
            dir.put_u64_le(block.len() as u64);
        }
        start = end;
    }
    w.flush()?;
    let f = w.into_inner().map_err(|e| e.into_error())?;
    write_at(&f, dir_offset, &dir)
}

/// Positioned write for the directory back-patch (`pwrite`-style on
/// Unix; a seek + write elsewhere).
#[cfg(unix)]
fn write_at(f: &File, offset: u64, bytes: &[u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.write_all_at(bytes, offset)
}

#[cfg(not(unix))]
fn write_at(mut f: &File, offset: u64, bytes: &[u8]) -> io::Result<()> {
    use std::io::{Seek, SeekFrom};
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(bytes)
}

/// Bounded retry budget for transient positioned-read errors: enough to
/// ride out an `EINTR` burst or a concurrent append, small enough that a
/// durably short file still fails fast and deterministically.
pub const READ_RETRIES: u32 = 3;

/// One positioned-read attempt (`pread`-style on Unix; a seek + read
/// elsewhere). Retry policy lives in `ChunkedReader::read_at`.
#[cfg(unix)]
fn read_at_once(f: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_at_once(mut f: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom};
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// File metadata read from the header.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub rows: u64,
    pub attr_names: Vec<String>,
    header_bytes: u64,
    /// Format version (1 = raw columns, 2/3 = compressed chunk blocks).
    version: u32,
    /// v2/v3 only: stored-chunk granularity (last chunk short).
    chunk_rows: u64,
    /// v2/v3 only: byte length of each stored-chunk block.
    chunk_lens: Vec<u64>,
    /// v3 only: encoded byte length of every column entry of every stored
    /// chunk, flat with stride [`TableMeta::stored_cols`] — the per-column
    /// directory that makes pruned block reads addressable.
    col_lens: Vec<u32>,
}

impl TableMeta {
    fn col_count(&self) -> usize {
        self.attr_names.len()
    }

    fn xs_offset(&self) -> u64 {
        self.header_bytes
    }

    fn ys_offset(&self) -> u64 {
        self.xs_offset() + self.rows * 8
    }

    fn attr_offset(&self, c: usize) -> u64 {
        self.ys_offset() + self.rows * 8 + (c as u64) * self.rows * 4
    }

    /// Total file size implied by the header.
    pub fn file_bytes(&self) -> u64 {
        match self.version {
            1 => self.attr_offset(self.col_count()),
            _ => self.header_bytes + self.chunk_lens.iter().sum::<u64>(),
        }
    }

    /// Format version (1 = raw columns, 2/3 = compressed chunk blocks).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Does the data section hold compressed chunk blocks?
    pub fn is_compressed(&self) -> bool {
        self.version >= 2
    }

    /// Names of the stored columns in file order: the two coordinate
    /// columns, then every attribute.
    pub fn stored_column_names(&self) -> Vec<String> {
        let mut v = vec!["x".to_string(), "y".to_string()];
        v.extend(self.attr_names.iter().cloned());
        v
    }

    /// Stored bytes of each column over the whole data section, when the
    /// format records them (v1: fixed-width columns; v3: per-column
    /// directory). `None` for v2, whose directory only has block totals.
    pub fn column_scan_bytes(&self) -> Option<Vec<u64>> {
        match self.version {
            1 => {
                let mut v = vec![self.rows * 8, self.rows * 8];
                v.extend(std::iter::repeat_n(self.rows * 4, self.col_count()));
                Some(v)
            }
            3 => {
                let sc = self.stored_cols();
                let mut v = vec![0u64; sc];
                for (i, &l) in self.col_lens.iter().enumerate() {
                    v[i % sc] += l as u64;
                }
                Some(v)
            }
            _ => None,
        }
    }

    /// Bytes a scan that materializes only the `attrs` attribute columns
    /// (plus the coordinates) fetches from storage: the per-column pruned
    /// total for v1/v3, the full block bytes for v2 — its blocks are only
    /// addressable whole, so pruning there saves decode CPU, not I/O.
    pub fn pruned_scan_bytes(&self, attrs: &[usize]) -> u64 {
        match self.column_scan_bytes() {
            Some(cols) => cols[0] + cols[1] + attrs.iter().map(|&a| cols[2 + a]).sum::<u64>(),
            None => self.scan_bytes(),
        }
    }

    /// v3 only: the file byte range `(offset, len)` of stored column
    /// `stored_col` (0 = x, 1 = y, 2+i = attribute i) within stored chunk
    /// `chunk` — one independently fetchable column entry (codec id,
    /// payload length, payload). `None` for v1/v2 files or out-of-range
    /// arguments.
    pub fn column_block_range(&self, chunk: usize, stored_col: usize) -> Option<(u64, u64)> {
        if self.version < 3 || chunk >= self.chunk_lens.len() || stored_col >= self.stored_cols() {
            return None;
        }
        let sc = self.stored_cols();
        let mut off = self.header_bytes + self.chunk_lens[..chunk].iter().sum::<u64>();
        for c in 0..stored_col {
            off += self.col_lens[chunk * sc + c] as u64;
        }
        Some((off, self.col_lens[chunk * sc + stored_col] as u64))
    }

    /// Logical (uncompressed) bytes per row: two f64 coordinates plus one
    /// f32 per attribute column.
    pub fn row_bytes(&self) -> usize {
        16 + 4 * self.col_count()
    }

    /// Bytes a full scan reads off disk: the raw data section for v1,
    /// the compressed blocks for v2.
    pub fn scan_bytes(&self) -> u64 {
        match self.version {
            1 => self.rows * self.row_bytes() as u64,
            _ => self.chunk_lens.iter().sum::<u64>(),
        }
    }

    /// Number of stored columns (coordinates + attributes).
    fn stored_cols(&self) -> usize {
        2 + self.col_count()
    }
}

/// The fixed header prefix shared by every format version: magic, row
/// count, and the attribute name table. Factored out of [`read_meta`] so
/// the v3 directory-rebuild fallback ([`rebuild_v3_meta`]) can re-parse
/// it without re-trusting the (possibly corrupt) chunk directory.
struct HeaderPrefix {
    version: u32,
    rows: u64,
    names: Vec<String>,
    header_bytes: u64,
}

fn read_prefix<R: Read>(r: &mut R, file_len: u64) -> io::Result<HeaderPrefix> {
    let mut fixed = [0u8; 20];
    r.read_exact(&mut fixed)?;
    let mut b = &fixed[..];
    let magic = b.get_u64_le();
    let version = match magic {
        MAGIC => 1,
        MAGIC_V2 => 2,
        MAGIC_V3 => 3,
        m if m & !0xFF == MAGIC_PREFIX && (m & 0xFF) as u8 > b'3' => {
            return Err(FormatError::UnsupportedVersion((m & 0xFF) as u32 - b'0' as u32).into());
        }
        _ => return Err(FormatError::BadMagic.into()),
    };
    let rows = b.get_u64_le();
    let ncols = b.get_u32_le();
    let mut names = Vec::with_capacity(ncols.min(1 << 16) as usize);
    let mut header_bytes = 20u64;
    for _ in 0..ncols {
        let mut lenb = [0u8; 4];
        r.read_exact(&mut lenb)?;
        let len = u32::from_le_bytes(lenb) as usize;
        if header_bytes + 4 + len as u64 > file_len {
            return Err(FormatError::Corrupt("column name runs past the file".into()).into());
        }
        let mut name = vec![0u8; len];
        r.read_exact(&mut name)?;
        header_bytes += 4 + len as u64;
        names.push(
            String::from_utf8(name).map_err(|_| {
                io::Error::from(FormatError::Corrupt("non-UTF8 column name".into()))
            })?,
        );
    }
    Ok(HeaderPrefix {
        version,
        rows,
        names,
        header_bytes,
    })
}

/// v2/v3: the stored-chunk granularity and chunk count that precede the
/// chunk directory, validated for mutual consistency with the row count.
fn read_chunk_header<R: Read>(r: &mut R, rows: u64) -> io::Result<(u64, u64)> {
    let mut fixed = [0u8; 12];
    r.read_exact(&mut fixed)?;
    let mut b = &fixed[..];
    let chunk_rows = b.get_u64_le();
    let n_chunks = b.get_u32_le() as u64;
    if rows > 0 && chunk_rows == 0 {
        return Err(FormatError::Corrupt("zero stored-chunk rows".into()).into());
    }
    let expect_chunks = if rows == 0 {
        0
    } else {
        rows.div_ceil(chunk_rows)
    };
    if n_chunks != expect_chunks {
        return Err(FormatError::Corrupt(format!(
            "{n_chunks} stored chunks, {expect_chunks} implied by {rows} rows × {chunk_rows}"
        ))
        .into());
    }
    Ok((chunk_rows, n_chunks))
}

fn read_meta<R: Read>(r: &mut R, file_len: u64) -> io::Result<TableMeta> {
    let HeaderPrefix {
        version,
        rows,
        names,
        mut header_bytes,
    } = read_prefix(r, file_len)?;
    let (chunk_rows, chunk_lens, col_lens) = if version >= 2 {
        let (chunk_rows, n_chunks) = read_chunk_header(r, rows)?;
        header_bytes += 12;
        // Checked accumulation: a corrupted directory entry (e.g.
        // u64::MAX) must surface as a typed error here, not overflow the
        // later prefix sums / size checks into a wrap-around that passes
        // validation and then aborts on a giant allocation.
        let overflow = || {
            io::Error::from(FormatError::Corrupt(
                "chunk directory lengths overflow".into(),
            ))
        };
        let mut lens = Vec::with_capacity(n_chunks as usize);
        let mut col_lens = Vec::new();
        let mut total = 0u64;
        if version >= 3 {
            // Per-column directory: stored_cols u32 entry lengths per
            // chunk; a block's length is the sum of its column entries.
            let stored_cols = 2 + names.len() as u64;
            let dir_entries = n_chunks.checked_mul(stored_cols).ok_or_else(overflow)?;
            if header_bytes + dir_entries * 4 > file_len {
                return Err(
                    FormatError::Corrupt("chunk directory runs past the file".into()).into(),
                );
            }
            col_lens.reserve(dir_entries as usize);
            for _ in 0..n_chunks {
                let mut block = 0u64;
                for _ in 0..stored_cols {
                    let mut lb = [0u8; 4];
                    r.read_exact(&mut lb)?;
                    let len = u32::from_le_bytes(lb);
                    if len < 5 {
                        return Err(FormatError::Corrupt(
                            "column entry shorter than its header".into(),
                        )
                        .into());
                    }
                    block = block.checked_add(len as u64).ok_or_else(overflow)?;
                    col_lens.push(len);
                }
                total = total.checked_add(block).ok_or_else(overflow)?;
                lens.push(block);
            }
            header_bytes += dir_entries * 4;
        } else {
            if header_bytes + n_chunks * 8 > file_len {
                return Err(
                    FormatError::Corrupt("chunk directory runs past the file".into()).into(),
                );
            }
            for _ in 0..n_chunks {
                let mut lb = [0u8; 8];
                r.read_exact(&mut lb)?;
                let len = u64::from_le_bytes(lb);
                total = total.checked_add(len).ok_or_else(overflow)?;
                lens.push(len);
            }
            header_bytes += n_chunks * 8;
        }
        // Non-overflowing but file-exceeding totals are ordinary
        // truncation, reported as such by validate_size.
        total.checked_add(header_bytes).ok_or_else(overflow)?;
        (chunk_rows, lens, col_lens)
    } else {
        (0, Vec::new(), Vec::new())
    };
    Ok(TableMeta {
        rows,
        attr_names: names,
        header_bytes,
        version,
        chunk_rows,
        chunk_lens,
        col_lens,
    })
}

/// Load the whole file into memory (the in-memory experiments). Single
/// sequential pass over the data section, decoded column-wise.
pub fn read_table(path: &Path) -> io::Result<PointTable> {
    let mut reader = ChunkedReader::open(path, usize::MAX)?;
    reader
        .next_chunk()?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "empty table file"))
}

/// Read just the header of a columnar table file (schema discovery for
/// the SQL `FROM 'path.bin'` source and the streaming planner), with the
/// same whole-file truncation validation as [`ChunkedReader::open`].
pub fn table_meta(path: &Path) -> io::Result<TableMeta> {
    let mut f = File::open(path)?;
    let actual_bytes = f.metadata()?.len();
    let (meta, rebuilt) = read_meta_recovering(&mut f, actual_bytes)?;
    if let Err(e) = validate_size(&meta, actual_bytes) {
        // Same corrupt-directory-masquerading-as-truncation fallback as
        // the projected open (see `ChunkedReader::open_projected`).
        if rebuilt || meta.version != 3 || !dir_rebuild_applies(&e) {
            return Err(e);
        }
        let m = rebuild_v3_meta(&mut f, actual_bytes).map_err(|_| e)?;
        validate_size(&m, actual_bytes)?;
        return Ok(m);
    }
    Ok(meta)
}

/// [`table_meta`] without the whole-file size check: the header itself is
/// still fully validated (magic, version, directory consistency), but a
/// data section shorter than the header claims is tolerated. This is the
/// schema-resolution entry point for pruned scans — whether missing
/// trailing bytes matter depends on the columns the query needs, which
/// only the projected open ([`ChunkedReader::open_projected`]) can judge,
/// so a file truncated inside pruned-away columns must not fail here.
pub fn table_schema(path: &Path) -> io::Result<TableMeta> {
    let mut f = File::open(path)?;
    let actual_bytes = f.metadata()?.len();
    Ok(read_meta_recovering(&mut f, actual_bytes)?.0)
}

fn validate_size(meta: &TableMeta, actual_bytes: u64) -> io::Result<()> {
    // Fail fast on truncated or inconsistent files: a header claiming
    // more data than the file holds would otherwise surface as an
    // UnexpectedEof deep inside a chunked scan (possibly hours into
    // the §7.7 disk-resident experiment).
    if actual_bytes < meta.file_bytes() {
        return Err(FormatError::Truncated {
            expected: meta.file_bytes(),
            actual: actual_bytes,
        }
        .into());
    }
    Ok(())
}

/// Projection-aware truncation check: only the bytes a pruned scan will
/// actually touch must exist, so a file truncated (or garbled) inside
/// pruned-away trailing columns still serves the projected query. With
/// every column needed this degenerates to [`validate_size`].
fn validate_size_projected(meta: &TableMeta, actual_bytes: u64, needed: &[bool]) -> io::Result<()> {
    let required = match meta.version {
        1 => {
            // End offset of the deepest stored column the scan touches.
            let last = needed.iter().rposition(|&n| n).unwrap_or(1);
            match last {
                0 => meta.ys_offset(),
                1 => meta.ys_offset() + meta.rows * 8,
                c => meta.attr_offset(c - 2) + meta.rows * 4,
            }
        }
        // v2 blocks are fetched whole; the full file must be there.
        2 => meta.file_bytes(),
        _ => match meta.chunk_lens.len() {
            0 => meta.header_bytes,
            nb => {
                // The deepest needed byte lives in the last stored block.
                let sc = meta.stored_cols();
                let last_block = meta.header_bytes + meta.chunk_lens[..nb - 1].iter().sum::<u64>();
                let mut end = last_block;
                let mut upto = last_block;
                for (c, &l) in meta.col_lens[(nb - 1) * sc..nb * sc].iter().enumerate() {
                    upto += l as u64;
                    if needed[c] {
                        end = upto;
                    }
                }
                end
            }
        },
    };
    if actual_bytes < required {
        return Err(FormatError::Truncated {
            expected: required,
            actual: actual_bytes,
        }
        .into());
    }
    Ok(())
}

/// Counters for the hardened read path: how often one [`ChunkedReader`]
/// recovered from a transient or structural fault instead of failing the
/// scan. Surfaced per query by the streaming executor's stats and
/// `EXPLAIN` output; all-zero on a healthy scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultRecovery {
    /// Transient positioned-read errors (`Interrupted`, or a short read
    /// while a concurrent writer grows the file) absorbed by the bounded
    /// retry in `read_at`.
    pub io_retries: u64,
    /// Re-read attempts on stored blocks whose first read decoded as
    /// corrupt (torn-read recovery): counts attempts, whether or not the
    /// re-read succeeded.
    pub block_rereads: u64,
    /// The v3 per-column chunk directory was corrupt and got rebuilt from
    /// the self-describing column entry headers in the data section;
    /// block reads fall back to the whole-block (v2-style) path.
    pub dir_rebuilt: bool,
}

impl FaultRecovery {
    /// Did this scan degrade or retry at all?
    pub fn any(&self) -> bool {
        self.io_retries > 0 || self.block_rereads > 0 || self.dir_rebuilt
    }

    /// Fold another reader's counters into this one (the streaming
    /// executor aggregates the sample reader and the pool reader).
    pub fn merge(&mut self, other: &FaultRecovery) {
        self.io_retries += other.io_retries;
        self.block_rereads += other.block_rereads;
        self.dir_rebuilt |= other.dir_rebuilt;
    }
}

/// Rebuild a v3 [`TableMeta`] whose chunk directory cannot be trusted.
///
/// Every column entry of the data section is self-describing — a 5-byte
/// `[codec u8][payload_len u32 LE]` header precedes each payload — and
/// the *size* of the directory is implied by `n_chunks × stored_cols`
/// alone, so a corrupt directory entry does not poison the data layout.
/// This walks the entry headers front to back, recomputing every entry
/// length. A walk that runs past the file means the data section itself
/// is damaged (or genuinely truncated): the caller then reports its
/// original error, not ours.
fn rebuild_v3_meta(f: &mut File, file_len: u64) -> io::Result<TableMeta> {
    use std::io::{Seek, SeekFrom};
    f.seek(SeekFrom::Start(0))?;
    let HeaderPrefix {
        version,
        rows,
        names,
        mut header_bytes,
    } = read_prefix(f, file_len)?;
    if version != 3 {
        return Err(FormatError::BadMagic.into());
    }
    let (chunk_rows, n_chunks) = read_chunk_header(f, rows)?;
    header_bytes += 12;
    let overflow = || {
        io::Error::from(FormatError::Corrupt(
            "chunk directory lengths overflow".into(),
        ))
    };
    let stored_cols = 2 + names.len() as u64;
    let dir_entries = n_chunks.checked_mul(stored_cols).ok_or_else(overflow)?;
    header_bytes = header_bytes
        .checked_add(dir_entries.checked_mul(4).ok_or_else(overflow)?)
        .ok_or_else(overflow)?;
    if header_bytes > file_len {
        return Err(FormatError::Corrupt("chunk directory runs past the file".into()).into());
    }
    let truncated = |expected: u64| {
        io::Error::from(FormatError::Truncated {
            expected,
            actual: file_len,
        })
    };
    let mut off = header_bytes;
    let mut chunk_lens = Vec::with_capacity(n_chunks as usize);
    let mut col_lens = Vec::with_capacity(dir_entries as usize);
    let mut hdr = [0u8; 5];
    for _ in 0..n_chunks {
        let mut block = 0u64;
        for _ in 0..stored_cols {
            if off + 5 > file_len {
                return Err(truncated(off + 5));
            }
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(&mut hdr)?;
            let plen = codec::le_u32(&hdr[1..5]) as u64;
            let entry = plen + 5;
            let entry32 = u32::try_from(entry).map_err(|_| overflow())?;
            off = off.checked_add(entry).ok_or_else(overflow)?;
            if off > file_len {
                return Err(truncated(off));
            }
            block += entry;
            col_lens.push(entry32);
        }
        chunk_lens.push(block);
    }
    Ok(TableMeta {
        rows,
        attr_names: names,
        header_bytes,
        version: 3,
        chunk_rows,
        chunk_lens,
        col_lens,
    })
}

/// Is this error one the v3 directory rebuild can plausibly repair? A
/// corrupt directory surfaces either as [`FormatError::Corrupt`] (entry
/// under 5 bytes, overflowing sums) or — when the bogus lengths stay
/// individually plausible — as [`FormatError::Truncated`], because the
/// implied data section no longer fits the file.
fn dir_rebuild_applies(e: &io::Error) -> bool {
    matches!(
        FormatError::of(e),
        Some(FormatError::Corrupt(_) | FormatError::Truncated { .. })
    )
}

/// Is this a typed corrupt-data error (the kind a torn-read re-read can
/// plausibly clear)?
fn is_corrupt(e: &io::Error) -> bool {
    matches!(FormatError::of(e), Some(FormatError::Corrupt(_)))
}

/// [`read_meta`] with the v3 directory-rebuild fallback; the boolean
/// reports whether the directory was rebuilt. When the rebuild also
/// fails, the *original* header error wins — the fallback must never
/// replace a precise diagnosis with a vaguer one.
fn read_meta_recovering(f: &mut File, actual_bytes: u64) -> io::Result<(TableMeta, bool)> {
    match read_meta(f, actual_bytes) {
        Ok(m) => Ok((m, false)),
        Err(e) if dir_rebuild_applies(&e) => match rebuild_v3_meta(f, actual_bytes) {
            Ok(m) => Ok((m, true)),
            Err(_) => Err(e),
        },
        Err(e) => Err(e),
    }
}

/// Per-column I/O accounting of one [`ChunkedReader`]: bytes fetched from
/// storage and time spent decoding, attributable per stored column.
/// Pruned columns stay at zero — that is the win these counters make
/// visible per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnIo {
    /// Stored column name (`x`, `y`, then the attribute names).
    pub name: String,
    pub bytes_read: u64,
    pub decode_time: Duration,
}

/// Column layout shared by every [`EncodedChunk`] of one scan: the
/// materialized attribute names (stored order) and their stored-column
/// indices. One `Arc` per scan, cloned per chunk.
#[derive(Debug)]
struct ChunkSchema {
    /// Materialized attribute names, ascending stored order.
    attr_names: Vec<String>,
    /// Stored-column index (`2 + attr`) of each materialized attribute.
    mat_stored: Vec<usize>,
    /// Total stored columns of the file schema (sizes `col_decode`).
    stored_cols: usize,
}

/// One stored block's *needed* column entries, fetched but not decoded:
/// `(stored_col, codec, payload)` in stored order. Shared (`Arc`) between
/// the delivery chunks that straddle it — each decodes its own copy, so
/// the bytes are read and charged once even though a straddled block is
/// decoded twice.
#[derive(Debug)]
pub struct EncodedBlock {
    rows: usize,
    cols: Vec<(usize, u8, Box<[u8]>)>,
}

/// One segment of an encoded delivery chunk.
#[derive(Debug)]
enum Segment {
    /// Rows already decoded by an earlier [`ChunkedReader::next_chunk`]
    /// call on the same reader (e.g. the streaming executor's sample
    /// chunk leaves a partially-consumed decoded block behind).
    Decoded(PointTable),
    /// `take` rows starting at `skip` of a shared encoded block.
    Block {
        block: Arc<EncodedBlock>,
        skip: usize,
        take: usize,
    },
}

/// The raw bytes of one delivery chunk, fetched from disk but not yet
/// decoded — the unit of work [`ChunkedReader::fetch_chunk`] hands to the
/// streaming executor's worker pool so column decode can run concurrently
/// with I/O and with other chunks' joins.
#[derive(Debug)]
pub struct EncodedChunk {
    rows: usize,
    data: EncodedRows,
    schema: Arc<ChunkSchema>,
}

#[derive(Debug)]
enum EncodedRows {
    /// v1: the little-endian column bytes of exactly this chunk's rows.
    Raw {
        xs: Box<[u8]>,
        ys: Box<[u8]>,
        /// Materialized attribute payloads, ascending stored order.
        attrs: Vec<Box<[u8]>>,
    },
    /// v2/v3: slices of (shared) encoded stored blocks, plus any decoded
    /// rows left pending by an earlier `next_chunk` on the same reader.
    Segments(Vec<Segment>),
}

/// The result of [`EncodedChunk::decode`]: the decoded rows plus the
/// decode time to attribute — `decode_time` is the wall time of the whole
/// decode (including row assembly), `col_decode` the per-stored-column
/// codec time (indexed like [`ChunkedReader::column_io`]).
#[derive(Debug)]
pub struct DecodedChunk {
    pub table: PointTable,
    pub decode_time: Duration,
    pub col_decode: Vec<Duration>,
}

impl EncodedChunk {
    /// Rows this chunk will decode to.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Decode into a [`PointTable`]. CPU-only (no I/O): safe to run on a
    /// worker thread while the reader fetches further chunks. A block
    /// shared with a neighbouring chunk is decoded by both — bytes are
    /// charged once at fetch, decode time per decode.
    pub fn decode(self) -> io::Result<DecodedChunk> {
        let t0 = Instant::now();
        let mut col_decode = vec![Duration::ZERO; self.schema.stored_cols];
        let names: Vec<&str> = self.schema.attr_names.iter().map(|s| s.as_str()).collect();
        let table = match self.data {
            EncodedRows::Raw { xs, ys, attrs } => {
                let tc = Instant::now();
                let xs: Vec<f64> = xs.chunks_exact(8).map(codec::le_f64).collect();
                col_decode[0] = tc.elapsed();
                let tc = Instant::now();
                let ys: Vec<f64> = ys.chunks_exact(8).map(codec::le_f64).collect();
                col_decode[1] = tc.elapsed();
                let mut attr_vals = Vec::with_capacity(attrs.len());
                for (i, raw) in attrs.into_iter().enumerate() {
                    let tc = Instant::now();
                    attr_vals.push(raw.chunks_exact(4).map(codec::le_f32).collect::<Vec<f32>>());
                    col_decode[self.schema.mat_stored[i]] += tc.elapsed();
                }
                PointTable::from_columns(xs, ys, &names, attr_vals)
            }
            EncodedRows::Segments(segs) => {
                let mut out: Option<PointTable> = None;
                for seg in segs {
                    let part = match seg {
                        Segment::Decoded(t) => t,
                        Segment::Block { block, skip, take } => {
                            let n = block.rows;
                            let mut xs = Vec::new();
                            let mut ys = Vec::new();
                            let mut attr_vals = Vec::with_capacity(block.cols.len());
                            for (c, codec_id, payload) in &block.cols {
                                let tc = Instant::now();
                                match c {
                                    0 => xs = codec::decode_f64s(*codec_id, n, payload)?,
                                    1 => ys = codec::decode_f64s(*codec_id, n, payload)?,
                                    _ => attr_vals.push(codec::decode_f32s(*codec_id, n, payload)?),
                                }
                                col_decode[*c] += tc.elapsed();
                            }
                            let full = PointTable::from_columns(xs, ys, &names, attr_vals);
                            if skip == 0 && take == full.len() {
                                full
                            } else {
                                full.slice(skip, skip + take)
                            }
                        }
                    };
                    match &mut out {
                        Some(o) => o.extend(&part),
                        None => out = Some(part),
                    }
                }
                out.unwrap_or_else(|| PointTable::with_capacity(0, &names))
            }
        };
        Ok(DecodedChunk {
            table,
            decode_time: t0.elapsed(),
            col_decode,
        })
    }
}

/// Streams record batches of at most `chunk_rows` from a columnar file
/// (any format version; compressed stored chunks are decoded and
/// re-sliced transparently), optionally materializing only a projected
/// subset of the attribute columns ([`ChunkedReader::open_projected`]).
#[derive(Debug)]
pub struct ChunkedReader {
    file: File,
    meta: TableMeta,
    cursor: u64,
    chunk_rows: usize,
    /// Reused raw-byte buffer: one column (v1), one stored block (v2) or
    /// one needed-column run (v3) at a time is decoded through it, so a
    /// chunk's footprint is its own storage plus this single scratch
    /// allocation.
    scratch: Vec<u8>,
    /// v2/v3: index of the next stored block to fetch.
    next_block: usize,
    /// v2/v3: file offset of each stored block (prefix sums of the chunk
    /// directory, computed once — a scan must not re-sum the prefix per
    /// fetch, which would be O(blocks²) over the whole file).
    block_offsets: Vec<u64>,
    /// v2/v3: decoded stored chunk not yet fully delivered, plus the rows
    /// of it already taken.
    pending: Option<(PointTable, usize)>,
    /// v2/v3: *encoded* stored block not yet fully handed out by
    /// [`Self::fetch_chunk`], plus the rows of it already taken.
    enc_pending: Option<(Arc<EncodedBlock>, usize)>,
    /// Shared column layout handed to every [`EncodedChunk`] (built on
    /// first use).
    chunk_schema: Option<Arc<ChunkSchema>>,
    /// Attribute columns to materialize (sorted, deduped); `None` = all.
    projection: Option<Vec<usize>>,
    /// The attribute columns actually materialized, ascending (the
    /// projection, or every column).
    mat_attrs: Vec<usize>,
    /// Stored-column mask implied by the projection (coordinates always
    /// on).
    needed: Vec<bool>,
    /// Per stored column I/O counters.
    col_io: Vec<ColumnIo>,
    bytes_read: u64,
    decode_time: Duration,
    /// Retry / degradation counters of this scan ([`Self::recovery`]).
    recovery: FaultRecovery,
}

impl ChunkedReader {
    pub fn open(path: &Path, chunk_rows: usize) -> io::Result<Self> {
        Self::open_projected(path, chunk_rows, None)
    }

    /// Open with projection pushdown: materialize only the `attrs`
    /// attribute columns (plus the coordinates, always read). Delivered
    /// chunks hold exactly those columns in stored order; the bytes of
    /// pruned columns are never fetched where the format allows it (v1
    /// and v3 — v2 fetches whole blocks and skips the pruned decode).
    /// `None` materializes every column, exactly like [`Self::open`].
    ///
    /// Fails with `InvalidInput` when `attrs` references a column the
    /// file does not have.
    pub fn open_projected(
        path: &Path,
        chunk_rows: usize,
        attrs: Option<&[usize]>,
    ) -> io::Result<Self> {
        let mut file = File::open(path)?;
        if let Some(kind) = faults::hit(faults::DISK_OPEN) {
            return Err(faults::io_error(kind));
        }
        let actual_bytes = file.metadata()?.len();
        // Graceful degradation: a v3 header whose per-column directory is
        // corrupt is rebuilt from the self-describing entry headers in
        // the data section. When the rebuild also fails (the data itself
        // is damaged or truncated) the *original* header error wins.
        let (mut meta, mut dir_rebuilt) = read_meta_recovering(&mut file, actual_bytes)?;
        let projection = match attrs {
            Some(a) => {
                let mut p = a.to_vec();
                p.sort_unstable();
                p.dedup();
                if let Some(&bad) = p.iter().find(|&&c| c >= meta.col_count()) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "projection references attribute column {bad}, file has {}",
                            meta.col_count()
                        ),
                    ));
                }
                Some(p)
            }
            None => None,
        };
        let mat_attrs: Vec<usize> = match &projection {
            Some(p) => p.clone(),
            None => (0..meta.col_count()).collect(),
        };
        let mut needed = vec![true; meta.stored_cols()];
        if let Some(p) = &projection {
            for (c, need) in needed.iter_mut().enumerate().skip(2) {
                *need = p.binary_search(&(c - 2)).is_ok();
            }
        }
        if let Err(e) = validate_size_projected(&meta, actual_bytes, &needed) {
            // A corrupt v3 directory whose bogus lengths stay individually
            // plausible passes read_meta but overclaims the data section,
            // surfacing here as Truncated — same rebuild fallback. A
            // genuinely truncated file fails the rebuild walk too (it runs
            // past EOF) and keeps its original error.
            if dir_rebuilt || meta.version != 3 || !dir_rebuild_applies(&e) {
                return Err(e);
            }
            match rebuild_v3_meta(&mut file, actual_bytes) {
                Ok(m) if validate_size_projected(&m, actual_bytes, &needed).is_ok() => {
                    dir_rebuilt = true;
                    meta = m;
                }
                _ => return Err(e),
            }
        }
        let col_io: Vec<ColumnIo> = meta
            .stored_column_names()
            .into_iter()
            .map(|name| ColumnIo {
                name,
                bytes_read: 0,
                decode_time: Duration::ZERO,
            })
            .collect();
        let mut block_offsets = Vec::with_capacity(meta.chunk_lens.len());
        let mut at = meta.header_bytes;
        for len in &meta.chunk_lens {
            block_offsets.push(at);
            at += len;
        }
        Ok(ChunkedReader {
            file,
            meta,
            cursor: 0,
            chunk_rows: chunk_rows.max(1),
            scratch: Vec::new(),
            next_block: 0,
            block_offsets,
            pending: None,
            enc_pending: None,
            chunk_schema: None,
            projection,
            mat_attrs,
            needed,
            col_io,
            bytes_read: 0,
            decode_time: Duration::ZERO,
            recovery: FaultRecovery {
                dir_rebuilt,
                ..FaultRecovery::default()
            },
        })
    }

    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// The attribute columns this reader materializes; `None` = all.
    pub fn projection(&self) -> Option<&[usize]> {
        self.projection.as_deref()
    }

    /// Per stored column I/O counters (coordinates first, then every
    /// attribute of the file schema; pruned columns stay at zero).
    pub fn column_io(&self) -> &[ColumnIo] {
        &self.col_io
    }

    /// Rows already consumed.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Bytes fetched from disk so far: raw column bytes for v1 files,
    /// compressed block bytes for v2 — the quantity a bandwidth-bound
    /// scan actually pays for (and the one the modelled-disk pacing
    /// charges).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Cumulative time spent decoding column bytes into values — codec
    /// decode for v2/v3 blocks, bulk little-endian conversion for v1
    /// columns; a subset of the wall time `next_chunk` calls took.
    pub fn decode_time(&self) -> Duration {
        self.decode_time
    }

    /// Rows remaining to be read.
    pub fn remaining(&self) -> u64 {
        self.meta.rows - self.cursor
    }

    /// Change the chunk size for subsequent [`Self::next_chunk`] calls.
    /// The streaming executor samples the first (small) chunk to summarise
    /// the workload, then switches to the planner-chosen chunk size
    /// without re-reading.
    pub fn set_chunk_rows(&mut self, chunk_rows: usize) {
        self.chunk_rows = chunk_rows.max(1);
    }

    /// Retry / degradation counters of this scan: transient-read retries,
    /// corrupt-block re-reads, and whether the v3 directory was rebuilt.
    /// All-zero on a healthy scan.
    pub fn recovery(&self) -> &FaultRecovery {
        &self.recovery
    }

    /// Positioned read: does not move any shared cursor and keeps no
    /// buffered readahead to discard, so per-column jumps cost exactly one
    /// `pread` each (the old `BufReader` + `SeekFrom::Start` pairing threw
    /// its buffer away on every column of every chunk).
    ///
    /// Transient failures — `Interrupted`, or a short read while a
    /// concurrent writer is still growing the file — are retried up to
    /// [`READ_RETRIES`] times (counted in [`Self::recovery`]) before the
    /// error surfaces; anything else fails immediately.
    fn read_at(&mut self, offset: u64, len: usize) -> io::Result<&[u8]> {
        self.scratch.resize(len, 0);
        let mut attempt = 0u32;
        loop {
            let res = match faults::hit(faults::DISK_READ_AT) {
                Some(kind) => Err(faults::io_error(kind)),
                None => read_at_once(&self.file, &mut self.scratch[..len], offset),
            };
            match res {
                Ok(()) => return Ok(&self.scratch[..len]),
                Err(e)
                    if attempt < READ_RETRIES
                        && matches!(
                            e.kind(),
                            io::ErrorKind::Interrupted | io::ErrorKind::UnexpectedEof
                        ) =>
                {
                    attempt += 1;
                    self.recovery.io_retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read the next chunk, or `None` at end of data.
    ///
    /// * v1: one positioned read per *materialized* column in ascending
    ///   offset order (pruned columns are skipped entirely); when the
    ///   chunk covers the whole remainder this is a single sequential
    ///   pass over the rest of the data the scan touches.
    /// * v2/v3: stored blocks are fetched with positioned reads (v3
    ///   prunes down to the needed column entries) and decoded; the
    ///   decoded rows are re-sliced to the requested delivery chunk size
    ///   (a stored chunk that exactly fills the request is handed over
    ///   without copying).
    pub fn next_chunk(&mut self) -> io::Result<Option<PointTable>> {
        if self.meta.is_compressed() {
            return self.next_chunk_v2();
        }
        if self.cursor >= self.meta.rows {
            return Ok(None);
        }
        let n = (self.meta.rows - self.cursor).min(self.chunk_rows as u64) as usize;

        let raw = self.read_at(self.meta.xs_offset() + self.cursor * 8, n * 8)?;
        let t0 = Instant::now();
        let xs: Vec<f64> = raw.chunks_exact(8).map(codec::le_f64).collect();
        let dt = t0.elapsed();
        self.col_io[0].decode_time += dt;
        self.decode_time += dt;
        let raw = self.read_at(self.meta.ys_offset() + self.cursor * 8, n * 8)?;
        let t0 = Instant::now();
        let ys: Vec<f64> = raw.chunks_exact(8).map(codec::le_f64).collect();
        let dt = t0.elapsed();
        self.col_io[1].decode_time += dt;
        self.decode_time += dt;
        self.col_io[0].bytes_read += (n * 8) as u64;
        self.col_io[1].bytes_read += (n * 8) as u64;

        let mut attr_vals: Vec<Vec<f32>> = Vec::with_capacity(self.mat_attrs.len());
        for i in 0..self.mat_attrs.len() {
            let c = self.mat_attrs[i];
            let raw = self.read_at(self.meta.attr_offset(c) + self.cursor * 4, n * 4)?;
            let t0 = Instant::now();
            attr_vals.push(raw.chunks_exact(4).map(codec::le_f32).collect());
            let dt = t0.elapsed();
            self.col_io[2 + c].decode_time += dt;
            self.decode_time += dt;
            self.col_io[2 + c].bytes_read += (n * 4) as u64;
        }
        self.bytes_read += (n * (16 + 4 * self.mat_attrs.len())) as u64;

        let names: Vec<&str> = self
            .mat_attrs
            .iter()
            .map(|&c| self.meta.attr_names[c].as_str())
            .collect();
        self.cursor += n as u64;
        Ok(Some(PointTable::from_columns(xs, ys, &names, attr_vals)))
    }

    /// v2 delivery: assemble up to `chunk_rows` rows from the pending
    /// decoded stored chunk and as many further blocks as needed.
    fn next_chunk_v2(&mut self) -> io::Result<Option<PointTable>> {
        let mut out: Option<PointTable> = None;
        let mut need = self.chunk_rows;
        while need > 0 {
            // Drain the pending decoded chunk first.
            if let Some((table, taken)) = self.pending.take() {
                let left = table.len() - taken;
                if left == 0 {
                    // Exhausted; fall through to fetch the next block.
                } else if taken == 0 && left <= need && out.is_none() {
                    // Whole stored chunk fits the request: hand it over
                    // without copying.
                    need -= left;
                    out = Some(table);
                    continue;
                } else {
                    let take = left.min(need);
                    let slice = table.slice(taken, taken + take);
                    match &mut out {
                        Some(o) => o.extend(&slice),
                        None => out = Some(slice),
                    }
                    need -= take;
                    if taken + take < table.len() {
                        self.pending = Some((table, taken + take));
                    }
                    continue;
                }
            }
            if self.next_block >= self.meta.chunk_lens.len() {
                break;
            }
            let table = self.fetch_block_recovering(self.next_block)?;
            self.next_block += 1;
            self.pending = Some((table, 0));
        }
        match out {
            Some(t) if !t.is_empty() => {
                self.cursor += t.len() as u64;
                Ok(Some(t))
            }
            _ => Ok(None),
        }
    }

    /// Rows held by stored block `idx` (the last block may be short).
    fn block_rows(&self, idx: usize) -> usize {
        let rows_before = idx as u64 * self.meta.chunk_rows;
        (self.meta.rows - rows_before).min(self.meta.chunk_rows) as usize
    }

    /// Names of the materialized attribute columns, in stored order.
    fn mat_names(&self) -> Vec<&str> {
        self.mat_attrs
            .iter()
            .map(|&c| self.meta.attr_names[c].as_str())
            .collect()
    }

    /// Fetch stored block `idx`. v3 issues positioned reads only for the
    /// needed column entries (adjacent entries coalesce into one read);
    /// v2 blocks are only addressable whole, so the full block is fetched
    /// and pruned columns merely skip their decode. A v3 file whose
    /// directory was rebuilt at open uses the whole-block path too — its
    /// per-entry walk re-validates every header against the block instead
    /// of trusting the reconstructed directory.
    fn fetch_block(&mut self, idx: usize) -> io::Result<PointTable> {
        if self.meta.version >= 3 && !self.recovery.dir_rebuilt {
            self.fetch_block_v3(idx)
        } else {
            self.fetch_block_full(idx)
        }
    }

    /// [`Self::fetch_block`] with torn-read recovery: a block whose first
    /// read validates or decodes as corrupt is re-read once — the bytes
    /// may have been caught mid-write — before the typed error stands.
    /// Durable on-disk corruption yields the same bytes, and the same
    /// error, on the re-read.
    fn fetch_block_recovering(&mut self, idx: usize) -> io::Result<PointTable> {
        match self.fetch_block(idx) {
            Err(e) if is_corrupt(&e) => {
                self.recovery.block_rereads += 1;
                self.fetch_block(idx)
            }
            r => r,
        }
    }

    /// [`Self::fetch_block_encoded`] with the same single-re-read
    /// torn-read recovery as [`Self::fetch_block_recovering`]. Corruption
    /// only detectable at decode time is handled by the caller re-reading
    /// through this same path.
    fn fetch_block_encoded_recovering(&mut self, idx: usize) -> io::Result<Arc<EncodedBlock>> {
        match self.fetch_block_encoded(idx) {
            Err(e) if is_corrupt(&e) => {
                self.recovery.block_rereads += 1;
                self.fetch_block_encoded(idx)
            }
            r => r,
        }
    }

    /// `DISK_BLOCK` failpoint, run after a block (or column-entry run)
    /// has landed in scratch. `Corrupt` flips the high payload-length
    /// byte of the first entry header — the validation walk then reports
    /// a typed corrupt-block error, exactly like a torn read would; any
    /// other kind surfaces as the matching I/O error.
    fn block_fault(&mut self) -> io::Result<()> {
        match faults::hit(faults::DISK_BLOCK) {
            None => Ok(()),
            Some(faults::FaultKind::Corrupt) => {
                if self.scratch.len() > 4 {
                    self.scratch[4] ^= 0x01;
                }
                Ok(())
            }
            Some(kind) => Err(faults::io_error(kind)),
        }
    }

    /// v2 path: one positioned read for the whole block, then walk its
    /// column entries, decoding the needed ones. All payload lengths are
    /// validated against the block, so a corrupted directory or payload
    /// yields a typed error, not a panic or a garbage table.
    fn fetch_block_full(&mut self, idx: usize) -> io::Result<PointTable> {
        let offset = self.block_offsets[idx];
        let len = self.meta.chunk_lens[idx] as usize;
        let n = self.block_rows(idx);
        let stored_cols = self.meta.stored_cols();
        self.bytes_read += len as u64;

        // Fill scratch with the block, then walk its column entries.
        self.read_at(offset, len)?;
        self.block_fault()?;
        let mut at = 0usize;
        let mut next_col = |scratch: &[u8]| -> io::Result<(u8, std::ops::Range<usize>)> {
            if at + 5 > len {
                return Err(
                    FormatError::Corrupt("chunk block ends mid column header".into()).into(),
                );
            }
            let codec = scratch[at];
            let plen = codec::le_u32(&scratch[at + 1..at + 5]) as usize;
            if at + 5 + plen > len {
                return Err(FormatError::Corrupt(
                    "column payload runs past its chunk block".into(),
                )
                .into());
            }
            let range = at + 5..at + 5 + plen;
            at += 5 + plen;
            Ok((codec, range))
        };
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut attr_vals = Vec::with_capacity(self.mat_attrs.len());
        for col in 0..stored_cols {
            let (c, r) = next_col(&self.scratch)?;
            let entry = 5 + r.len() as u64;
            if self.needed[col] {
                let t0 = Instant::now();
                match col {
                    0 => xs = codec::decode_f64s(c, n, &self.scratch[r])?,
                    1 => ys = codec::decode_f64s(c, n, &self.scratch[r])?,
                    _ => attr_vals.push(codec::decode_f32s(c, n, &self.scratch[r])?),
                }
                let dt = t0.elapsed();
                self.col_io[col].decode_time += dt;
                self.decode_time += dt;
            }
            self.col_io[col].bytes_read += entry;
        }
        if at != len {
            return Err(FormatError::Corrupt(format!(
                "chunk block has {} trailing bytes after its last column",
                len - at
            ))
            .into());
        }
        let names = self.mat_names();
        Ok(PointTable::from_columns(xs, ys, &names, attr_vals))
    }

    /// v3 path: the per-column directory locates every column entry, so
    /// only the needed entries are fetched — adjacent needed entries
    /// coalesce into a single positioned read, and a pruned column's
    /// bytes (however garbled) are never touched.
    fn fetch_block_v3(&mut self, idx: usize) -> io::Result<PointTable> {
        let sc = self.meta.stored_cols();
        let n = self.block_rows(idx);
        let lens: Vec<u64> = self.meta.col_lens[idx * sc..(idx + 1) * sc]
            .iter()
            .map(|&l| l as u64)
            .collect();

        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut attr_vals: Vec<Vec<f32>> = Vec::with_capacity(self.mat_attrs.len());

        let mut col = 0usize;
        let mut entry_off = self.block_offsets[idx];
        while col < sc {
            if !self.needed[col] {
                entry_off += lens[col];
                col += 1;
                continue;
            }
            // Coalesce the run of adjacent needed entries into one read.
            let run_start = col;
            let run_off = entry_off;
            let mut run_len = 0u64;
            while col < sc && self.needed[col] {
                run_len += lens[col];
                entry_off += lens[col];
                col += 1;
            }
            self.read_at(run_off, run_len as usize)?;
            self.block_fault()?;
            self.bytes_read += run_len;
            // Walk the entries inside the run.
            let mut at = 0usize;
            for (c, &entry_len) in lens.iter().enumerate().take(col).skip(run_start) {
                let entry = entry_len as usize;
                let codec_id = self.scratch[at];
                let plen = codec::le_u32(&self.scratch[at + 1..at + 5]) as usize;
                if plen + 5 != entry {
                    return Err(FormatError::Corrupt(
                        "column payload length disagrees with the chunk directory".into(),
                    )
                    .into());
                }
                let payload = at + 5..at + entry;
                let t0 = Instant::now();
                match c {
                    0 => xs = codec::decode_f64s(codec_id, n, &self.scratch[payload])?,
                    1 => ys = codec::decode_f64s(codec_id, n, &self.scratch[payload])?,
                    _ => attr_vals.push(codec::decode_f32s(codec_id, n, &self.scratch[payload])?),
                }
                let dt = t0.elapsed();
                self.col_io[c].bytes_read += entry as u64;
                self.col_io[c].decode_time += dt;
                self.decode_time += dt;
                at += entry;
            }
        }
        let names = self.mat_names();
        Ok(PointTable::from_columns(xs, ys, &names, attr_vals))
    }

    /// The shared column layout of this scan's encoded chunks.
    fn schema(&mut self) -> Arc<ChunkSchema> {
        self.chunk_schema
            .get_or_insert_with(|| {
                Arc::new(ChunkSchema {
                    attr_names: self
                        .mat_attrs
                        .iter()
                        .map(|&c| self.meta.attr_names[c].clone())
                        .collect(),
                    mat_stored: self.mat_attrs.iter().map(|&c| 2 + c).collect(),
                    stored_cols: self.meta.stored_cols(),
                })
            })
            .clone()
    }

    /// Fetch the next delivery chunk's bytes *without decoding them* —
    /// the I/O half of [`Self::next_chunk`], for callers that decode on a
    /// worker pool ([`EncodedChunk::decode`]). Interleaves correctly with
    /// `next_chunk` on the same reader (a partially-delivered decoded
    /// block carries over as a pre-decoded segment). Byte counters
    /// (`bytes_read`, per-column I/O) are charged here; decode time is
    /// reported by [`EncodedChunk::decode`] instead of the reader.
    pub fn fetch_chunk(&mut self) -> io::Result<Option<EncodedChunk>> {
        if !self.meta.is_compressed() {
            return self.fetch_chunk_v1();
        }
        let mut segs: Vec<Segment> = Vec::new();
        let mut got = 0usize;
        let mut need = self.chunk_rows;
        while need > 0 {
            // Decoded rows left behind by a next_chunk call come first.
            if let Some((table, taken)) = self.pending.take() {
                let left = table.len() - taken;
                if left > 0 {
                    let take = left.min(need);
                    if taken == 0 && take == table.len() {
                        segs.push(Segment::Decoded(table));
                    } else {
                        segs.push(Segment::Decoded(table.slice(taken, taken + take)));
                        if taken + take < table.len() {
                            self.pending = Some((table, taken + take));
                        }
                    }
                    need -= take;
                    got += take;
                    continue;
                }
            }
            // Then the pending encoded block, then fresh blocks.
            if let Some((block, taken)) = self.enc_pending.take() {
                let left = block.rows - taken;
                if left > 0 {
                    let take = left.min(need);
                    segs.push(Segment::Block {
                        block: Arc::clone(&block),
                        skip: taken,
                        take,
                    });
                    if taken + take < block.rows {
                        self.enc_pending = Some((block, taken + take));
                    }
                    need -= take;
                    got += take;
                    continue;
                }
            }
            if self.next_block >= self.meta.chunk_lens.len() {
                break;
            }
            let block = self.fetch_block_encoded_recovering(self.next_block)?;
            self.next_block += 1;
            self.enc_pending = Some((block, 0));
        }
        if got == 0 {
            return Ok(None);
        }
        self.cursor += got as u64;
        Ok(Some(EncodedChunk {
            rows: got,
            data: EncodedRows::Segments(segs),
            schema: self.schema(),
        }))
    }

    /// v1 fetch: the positioned column reads of [`Self::next_chunk`],
    /// keeping the bytes raw for a deferred bulk LE conversion.
    fn fetch_chunk_v1(&mut self) -> io::Result<Option<EncodedChunk>> {
        if self.cursor >= self.meta.rows {
            return Ok(None);
        }
        let n = (self.meta.rows - self.cursor).min(self.chunk_rows as u64) as usize;
        let xs: Box<[u8]> = self
            .read_at(self.meta.xs_offset() + self.cursor * 8, n * 8)?
            .into();
        let ys: Box<[u8]> = self
            .read_at(self.meta.ys_offset() + self.cursor * 8, n * 8)?
            .into();
        self.col_io[0].bytes_read += (n * 8) as u64;
        self.col_io[1].bytes_read += (n * 8) as u64;
        let mut attrs: Vec<Box<[u8]>> = Vec::with_capacity(self.mat_attrs.len());
        for i in 0..self.mat_attrs.len() {
            let c = self.mat_attrs[i];
            let raw: Box<[u8]> = self
                .read_at(self.meta.attr_offset(c) + self.cursor * 4, n * 4)?
                .into();
            attrs.push(raw);
            self.col_io[2 + c].bytes_read += (n * 4) as u64;
        }
        self.bytes_read += (n * (16 + 4 * self.mat_attrs.len())) as u64;
        self.cursor += n as u64;
        Ok(Some(EncodedChunk {
            rows: n,
            data: EncodedRows::Raw { xs, ys, attrs },
            schema: self.schema(),
        }))
    }

    /// Fetch stored block `idx` keeping the needed column entries encoded
    /// — the I/O half of [`Self::fetch_block`], with identical positioned
    /// reads, byte accounting and structural validation.
    fn fetch_block_encoded(&mut self, idx: usize) -> io::Result<Arc<EncodedBlock>> {
        let n = self.block_rows(idx);
        let sc = self.meta.stored_cols();
        let mut cols: Vec<(usize, u8, Box<[u8]>)> = Vec::with_capacity(self.mat_attrs.len() + 2);
        if self.meta.version >= 3 && !self.recovery.dir_rebuilt {
            let lens: Vec<u64> = self.meta.col_lens[idx * sc..(idx + 1) * sc]
                .iter()
                .map(|&l| l as u64)
                .collect();
            let mut col = 0usize;
            let mut entry_off = self.block_offsets[idx];
            while col < sc {
                if !self.needed[col] {
                    entry_off += lens[col];
                    col += 1;
                    continue;
                }
                let run_start = col;
                let run_off = entry_off;
                let mut run_len = 0u64;
                while col < sc && self.needed[col] {
                    run_len += lens[col];
                    entry_off += lens[col];
                    col += 1;
                }
                self.read_at(run_off, run_len as usize)?;
                self.block_fault()?;
                self.bytes_read += run_len;
                let mut at = 0usize;
                for (c, &entry_len) in lens.iter().enumerate().take(col).skip(run_start) {
                    let entry = entry_len as usize;
                    let codec_id = self.scratch[at];
                    let plen = codec::le_u32(&self.scratch[at + 1..at + 5]) as usize;
                    if plen + 5 != entry {
                        return Err(FormatError::Corrupt(
                            "column payload length disagrees with the chunk directory".into(),
                        )
                        .into());
                    }
                    cols.push((c, codec_id, self.scratch[at + 5..at + entry].into()));
                    self.col_io[c].bytes_read += entry as u64;
                    at += entry;
                }
            }
        } else {
            let offset = self.block_offsets[idx];
            let len = self.meta.chunk_lens[idx] as usize;
            self.bytes_read += len as u64;
            self.read_at(offset, len)?;
            self.block_fault()?;
            let mut at = 0usize;
            for col in 0..sc {
                if at + 5 > len {
                    return Err(
                        FormatError::Corrupt("chunk block ends mid column header".into()).into(),
                    );
                }
                let codec_id = self.scratch[at];
                let plen = codec::le_u32(&self.scratch[at + 1..at + 5]) as usize;
                if at + 5 + plen > len {
                    return Err(FormatError::Corrupt(
                        "column payload runs past its chunk block".into(),
                    )
                    .into());
                }
                if self.needed[col] {
                    cols.push((col, codec_id, self.scratch[at + 5..at + 5 + plen].into()));
                }
                self.col_io[col].bytes_read += 5 + plen as u64;
                at += 5 + plen;
            }
            if at != len {
                return Err(FormatError::Corrupt(format!(
                    "chunk block has {} trailing bytes after its last column",
                    len - at
                ))
                .into());
            }
        }
        Ok(Arc::new(EncodedBlock { rows: n, cols }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_geom::Point;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("raster-data-test-{}-{name}", std::process::id()));
        p
    }

    fn sample(n: usize) -> PointTable {
        let mut t = PointTable::with_capacity(n, &["a", "bb"]);
        for i in 0..n {
            t.push(
                Point::new(i as f64 * 1.5, -(i as f64)),
                &[i as f32, i as f32 * 0.5],
            );
        }
        t
    }

    #[test]
    fn truncated_data_section_rejected_at_open() {
        let path = tmp("truncated.bin");
        let t = sample(500);
        write_table(&path, &t).unwrap();
        // Chop off the last kilobyte of the data section.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 1024]).unwrap();
        let err = match ChunkedReader::open(&path, 100) {
            Err(e) => e,
            Ok(_) => panic!("truncated file must be rejected at open"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_header_rejected() {
        let path = tmp("headerless.bin");
        let t = sample(100);
        write_table(&path, &t).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Keep only the first 10 bytes — mid-magic/rows.
        std::fs::write(&path, &full[..10]).unwrap();
        assert!(ChunkedReader::open(&path, 100).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rows_overclaim_rejected() {
        let path = tmp("overclaim.bin");
        let t = sample(100);
        write_table(&path, &t).unwrap();
        // Inflate the row count in the header (bytes 8..16, little-endian).
        let mut full = std::fs::read(&path).unwrap();
        full[8..16].copy_from_slice(&(1_000_000u64).to_le_bytes());
        std::fs::write(&path, &full).unwrap();
        let err = match ChunkedReader::open(&path, 100) {
            Err(e) => e,
            Ok(_) => panic!("overclaimed row count must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_rejected() {
        let path = tmp("empty.bin");
        std::fs::write(&path, []).unwrap();
        assert!(ChunkedReader::open(&path, 100).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_is_tolerated() {
        // Extra bytes after the data section (e.g. from a crashed append)
        // don't invalidate the declared table.
        let path = tmp("trailing.bin");
        let t = sample(200);
        write_table(&path, &t).unwrap();
        let mut full = std::fs::read(&path).unwrap();
        full.extend_from_slice(&[0xAB; 64]);
        std::fs::write(&path, &full).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_whole_table() {
        let path = tmp("roundtrip.bin");
        let t = sample(1_000);
        write_table(&path, &t).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_read_reassembles_table() {
        let path = tmp("chunks.bin");
        let t = sample(1_003); // deliberately not a multiple of the chunk
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        assert_eq!(r.meta().rows, 1_003);
        assert_eq!(r.meta().attr_names, vec!["a", "bb"]);
        let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
        let mut chunks = 0;
        while let Some(c) = r.next_chunk().unwrap() {
            assert!(c.len() <= 100);
            whole.extend(&c);
            chunks += 1;
        }
        assert_eq!(chunks, 11);
        assert_eq!(whole, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_size_can_change_mid_scan() {
        // The streaming executor reads a small sample chunk, then switches
        // to the planner-chosen chunk size without re-reading.
        let path = tmp("rechunk.bin");
        let t = sample(1_000);
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 64).unwrap();
        let first = r.next_chunk().unwrap().unwrap();
        assert_eq!(first.len(), 64);
        assert_eq!(r.cursor(), 64);
        r.set_chunk_rows(400);
        let mut whole = first;
        while let Some(c) = r.next_chunk().unwrap() {
            assert!(c.len() <= 400);
            whole.extend(&c);
        }
        assert_eq!(whole, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table_meta_reads_header_and_validates() {
        let path = tmp("meta-only.bin");
        let t = sample(321);
        write_table(&path, &t).unwrap();
        let meta = table_meta(&path).unwrap();
        assert_eq!(meta.rows, 321);
        assert_eq!(meta.attr_names, vec!["a", "bb"]);
        // Truncation is caught at the header read, like open().
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 100]).unwrap();
        assert!(table_meta(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("bad.bin");
        std::fs::write(&path, [0u8; 64]).unwrap();
        let err = match ChunkedReader::open(&path, 10) {
            Err(e) => e,
            Ok(_) => panic!("bad magic must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table_roundtrips() {
        let path = tmp("empty.bin");
        let t = PointTable::with_capacity(0, &["x"]);
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 10).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.next_chunk().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_roundtrip_whole_table() {
        let path = tmp("z-roundtrip.binz");
        let t = sample(2_500);
        write_table_compressed(&path, &t, 700).unwrap();
        let meta = table_meta(&path).unwrap();
        assert_eq!(meta.version(), 3);
        assert!(meta.is_compressed());
        assert_eq!(meta.file_bytes(), std::fs::metadata(&path).unwrap().len());
        let back = read_table(&path).unwrap();
        assert_eq!(t, back);
        // The sample's integer-ish columns compress: fewer stored than
        // logical bytes.
        assert!(meta.scan_bytes() < t.len() as u64 * meta.row_bytes() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_chunked_read_matches_raw_at_any_delivery_size() {
        // Delivery chunk sizes that undershoot, straddle and overshoot
        // the 400-row stored chunks must all reassemble the same table.
        let path = tmp("z-chunks.binz");
        let t = sample(1_003);
        write_table_compressed(&path, &t, 400).unwrap();
        for delivery in [1usize, 7, 399, 400, 401, 1000, 5000] {
            let mut r = ChunkedReader::open(&path, delivery).unwrap();
            let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
            while let Some(c) = r.next_chunk().unwrap() {
                assert!(c.len() <= delivery);
                whole.extend(&c);
            }
            assert_eq!(whole, t, "delivery chunk {delivery}");
            assert_eq!(r.bytes_read(), r.meta().scan_bytes());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_chunk_size_can_change_mid_scan() {
        let path = tmp("z-rechunk.binz");
        let t = sample(1_000);
        write_table_compressed(&path, &t, 256).unwrap();
        let mut r = ChunkedReader::open(&path, 64).unwrap();
        let first = r.next_chunk().unwrap().unwrap();
        assert_eq!(first.len(), 64);
        r.set_chunk_rows(333);
        let mut whole = first;
        while let Some(c) = r.next_chunk().unwrap() {
            assert!(c.len() <= 333);
            whole.extend(&c);
        }
        assert_eq!(whole, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_empty_table_roundtrips() {
        let path = tmp("z-empty.binz");
        let t = PointTable::with_capacity(0, &["x"]);
        write_table_compressed(&path, &t, 100).unwrap();
        let mut r = ChunkedReader::open(&path, 10).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.next_chunk().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_yields_typed_bad_magic() {
        let path = tmp("foreign.bin");
        std::fs::write(&path, b"PARQUET1_not_really_a_table_file_____").unwrap();
        let err = ChunkedReader::open(&path, 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(FormatError::of(&err), Some(&FormatError::BadMagic));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newer_version_yields_typed_unsupported() {
        // "RJPTBL04" — our prefix, a future version byte.
        let path = tmp("future.bin");
        let mut bytes = (MAGIC_V3 + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 56]);
        std::fs::write(&path, &bytes).unwrap();
        let err = ChunkedReader::open(&path, 10).unwrap_err();
        assert_eq!(
            FormatError::of(&err),
            Some(&FormatError::UnsupportedVersion(4))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_compressed_file_rejected_at_open() {
        let path = tmp("z-truncated.binz");
        let t = sample(2_000);
        write_table_compressed(&path, &t, 512).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 200]).unwrap();
        let err = ChunkedReader::open(&path, 100).unwrap_err();
        assert!(
            matches!(FormatError::of(&err), Some(FormatError::Truncated { .. })),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_compressed_payload_is_an_error_not_garbage() {
        // Flip bytes inside the first block's first column header so the
        // payload length disagrees with the directory — the reader must
        // return a typed error instead of panicking or decoding garbage.
        let path = tmp("z-corrupt.binz");
        let t = sample(1_000);
        write_table_compressed(&path, &t, 512).unwrap();
        let clean = std::fs::read(&path).unwrap();
        let meta = table_meta(&path).unwrap();
        let header = (clean.len() as u64 - meta.scan_bytes()) as usize;
        let stored_cols = 2 + meta.attr_names.len();
        let dir_bytes = meta.chunk_lens.len() * stored_cols * 4;

        // Corrupt the codec id of the first column.
        let mut bad = clean.clone();
        bad[header] = 99;
        std::fs::write(&path, &bad).unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        let err = r.next_chunk().unwrap_err();
        assert!(
            matches!(FormatError::of(&err), Some(FormatError::Corrupt(_))),
            "{err}"
        );

        // Corrupt the payload length so it disagrees with the directory.
        let mut bad = clean.clone();
        bad[header + 1..header + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        assert!(r.next_chunk().is_err());

        // Corrupt the chunk directory count.
        let mut bad = clean.clone();
        let ndir = header - dir_bytes - 4;
        bad[ndir..ndir + 4].copy_from_slice(&1_000u32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            FormatError::of(&ChunkedReader::open(&path, 100).unwrap_err()),
            Some(FormatError::Corrupt(_))
        ));

        // A directory entry shorter than its 5-byte column header: the
        // data section is intact, so the open *recovers* by rebuilding
        // the directory from the self-describing entry headers and the
        // scan stays bitwise identical (never a decode of misaligned
        // garbage).
        let mut bad = clean.clone();
        let dir0 = header - dir_bytes;
        bad[dir0..dir0 + 4].copy_from_slice(&3u32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        assert!(r.recovery().dir_rebuilt);
        let mut whole = PointTable::with_capacity(0, &["a", "bb"]);
        while let Some(c) = r.next_chunk().unwrap() {
            whole.extend(&c);
        }
        assert_eq!(whole, t);

        // An oversized directory entry implies more data than the file
        // holds — it surfaces as truncation, and the same rebuild
        // recovers it (the file itself is complete).
        let mut bad = clean;
        bad[dir0..dir0 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let r = ChunkedReader::open(&path, 100).unwrap();
        assert!(r.recovery().dir_rebuilt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_legacy_v2_payload_is_an_error_not_garbage() {
        // The legacy whole-block directory keeps its own corruption
        // coverage: payload overrun, count mismatch and the u64::MAX
        // overflow guard.
        let path = tmp("z2-corrupt.binz");
        let t = sample(1_000);
        write_table_compressed_v2(&path, &t, 512).unwrap();
        let clean = std::fs::read(&path).unwrap();
        let meta = table_meta(&path).unwrap();
        assert_eq!(meta.version(), 2);
        let header = (clean.len() as u64 - meta.scan_bytes()) as usize;

        // Corrupt the codec id of the first column.
        let mut bad = clean.clone();
        bad[header] = 99;
        std::fs::write(&path, &bad).unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        assert!(matches!(
            FormatError::of(&r.next_chunk().unwrap_err()),
            Some(FormatError::Corrupt(_))
        ));

        // Corrupt the payload length so it runs past the block.
        let mut bad = clean.clone();
        bad[header + 1..header + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let mut r = ChunkedReader::open(&path, 100).unwrap();
        assert!(r.next_chunk().is_err());

        // Corrupt the chunk directory count.
        let mut bad = clean.clone();
        let ndir = header - meta.chunk_lens.len() * 8 - 4;
        bad[ndir..ndir + 4].copy_from_slice(&1_000u32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            FormatError::of(&ChunkedReader::open(&path, 100).unwrap_err()),
            Some(FormatError::Corrupt(_))
        ));

        // Oversized directory entry (u64::MAX): must be a typed error at
        // open, not an arithmetic overflow or a giant allocation later.
        let mut bad = clean;
        let dir0 = header - meta.chunk_lens.len() * 8;
        bad[dir0..dir0 + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            FormatError::of(&ChunkedReader::open(&path, 100).unwrap_err()),
            Some(FormatError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    /// The materialized columns of a projected read, reassembled whole.
    fn scan_projected(path: &Path, chunk: usize, attrs: Option<&[usize]>) -> (PointTable, u64) {
        let mut r = ChunkedReader::open_projected(path, chunk, attrs).unwrap();
        let names: Vec<String> = match attrs {
            Some(a) => a.iter().map(|&c| r.meta().attr_names[c].clone()).collect(),
            None => r.meta().attr_names.clone(),
        };
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut whole = PointTable::with_capacity(0, &names);
        while let Some(c) = r.next_chunk().unwrap() {
            whole.extend(&c);
        }
        (whole, r.bytes_read())
    }

    #[test]
    fn projected_v1_scan_skips_pruned_columns() {
        let path = tmp("proj-v1.bin");
        let t = sample(1_003);
        write_table(&path, &t).unwrap();
        let (pruned, pruned_bytes) = scan_projected(&path, 100, Some(&[1]));
        let (full, full_bytes) = scan_projected(&path, 100, None);
        assert_eq!(full, t);
        assert_eq!(pruned.attr_names(), vec!["bb"]);
        assert_eq!(pruned.xs(), t.xs());
        assert_eq!(pruned.attr(0), t.attr(1));
        assert!(pruned_bytes < full_bytes, "{pruned_bytes} vs {full_bytes}");
        assert_eq!(pruned_bytes, 1_003 * (16 + 4));
        let meta = table_meta(&path).unwrap();
        assert_eq!(meta.pruned_scan_bytes(&[1]), pruned_bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn projected_v3_scan_reads_only_needed_column_entries() {
        let path = tmp("proj-v3.binz");
        let t = sample(2_000);
        write_table_compressed(&path, &t, 600).unwrap();
        let meta = table_meta(&path).unwrap();
        for (attrs, label) in [
            (vec![], "coords only"),
            (vec![0], "first attr"),
            (vec![1], "second attr"),
            (vec![0, 1], "all attrs"),
        ] {
            let (pruned, bytes) = scan_projected(&path, 256, Some(&attrs));
            assert_eq!(pruned.len(), t.len(), "{label}");
            assert_eq!(pruned.xs(), t.xs(), "{label}");
            assert_eq!(pruned.ys(), t.ys(), "{label}");
            for (i, &a) in attrs.iter().enumerate() {
                assert_eq!(pruned.attr(i), t.attr(a), "{label}");
            }
            assert_eq!(bytes, meta.pruned_scan_bytes(&attrs), "{label}");
            if attrs.len() < 2 {
                assert!(bytes < meta.scan_bytes(), "{label}");
            } else {
                assert_eq!(bytes, meta.scan_bytes(), "{label}");
            }
        }
        // Per-column attribution: a pruned column's counters stay zero
        // and the read columns' bytes sum to the total.
        let mut r = ChunkedReader::open_projected(&path, 256, Some(&[1])).unwrap();
        while r.next_chunk().unwrap().is_some() {}
        let io = r.column_io();
        assert_eq!(io.len(), 4);
        assert_eq!(io[0].name, "x");
        assert_eq!(io[2].name, "a");
        assert_eq!(io[2].bytes_read, 0, "pruned column fetched no bytes");
        assert_eq!(io[2].decode_time, Duration::ZERO);
        assert!(io[3].bytes_read > 0);
        assert_eq!(io.iter().map(|c| c.bytes_read).sum::<u64>(), r.bytes_read());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn projected_v2_scan_projects_after_decode() {
        // Legacy v2 blocks are only addressable whole: a projected scan
        // fetches every byte but skips the pruned columns' decode and
        // still delivers the pruned schema.
        let path = tmp("proj-v2.binz");
        let t = sample(1_500);
        write_table_compressed_v2(&path, &t, 400).unwrap();
        let meta = table_meta(&path).unwrap();
        assert_eq!(meta.column_scan_bytes(), None);
        assert_eq!(meta.pruned_scan_bytes(&[0]), meta.scan_bytes());
        let (pruned, bytes) = scan_projected(&path, 333, Some(&[0]));
        assert_eq!(pruned.attr_names(), vec!["a"]);
        assert_eq!(pruned.attr(0), t.attr(0));
        assert_eq!(bytes, meta.scan_bytes(), "v2 fetches whole blocks");
        let mut r = ChunkedReader::open_projected(&path, 333, Some(&[0])).unwrap();
        while r.next_chunk().unwrap().is_some() {}
        let io = r.column_io();
        assert!(io[3].bytes_read > 0, "pruned column's bytes still fetched");
        assert_eq!(io[3].decode_time, Duration::ZERO, "…but never decoded");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_pruned_column_is_never_read_corrupt_required_is_typed() {
        let path = tmp("proj-corrupt.binz");
        let t = sample(1_200);
        write_table_compressed(&path, &t, 500).unwrap();
        let clean = std::fs::read(&path).unwrap();
        let meta = table_meta(&path).unwrap();

        // Garble the whole entry of attribute `a` (stored col 2) in every
        // chunk — including its codec id, which would be a hard Corrupt
        // error if ever read: a scan pruning it must not notice.
        let mut bad = clean.clone();
        for chunk in 0..3 {
            let (off, len) = meta.column_block_range(chunk, 2).unwrap();
            bad[off as usize] = 99; // unknown codec id
            for b in &mut bad[off as usize + 5..(off + len) as usize] {
                *b ^= 0xA5;
            }
        }
        std::fs::write(&path, &bad).unwrap();
        let (pruned, _) = scan_projected(&path, 500, Some(&[1]));
        assert_eq!(
            pruned.attr(0),
            t.attr(1),
            "pruned-away corruption is invisible"
        );

        // The same scan *requiring* the garbled column fails with a typed
        // error, never a panic or silent garbage.
        let mut r = ChunkedReader::open_projected(&path, 500, Some(&[0])).unwrap();
        let err = r.next_chunk().unwrap_err();
        assert!(
            matches!(FormatError::of(&err), Some(FormatError::Corrupt(_))),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_tail_truncation_spares_pruned_scans() {
        // Chop into the last attribute column's region: a scan that
        // prunes it still works; an unprojected open reports Truncated.
        let path = tmp("proj-trunc.bin");
        let t = sample(400);
        write_table(&path, &t).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 100]).unwrap();
        let err = ChunkedReader::open(&path, 100).unwrap_err();
        assert!(matches!(
            FormatError::of(&err),
            Some(FormatError::Truncated { .. })
        ));
        let (pruned, _) = scan_projected(&path, 100, Some(&[0]));
        assert_eq!(pruned.len(), 400);
        assert_eq!(pruned.attr(0), t.attr(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn projection_out_of_range_is_invalid_input() {
        let path = tmp("proj-oob.bin");
        write_table(&path, &sample(10)).unwrap();
        let err = ChunkedReader::open_projected(&path, 10, Some(&[2])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn column_block_ranges_tile_the_data_section() {
        let path = tmp("proj-ranges.binz");
        let t = sample(1_000);
        write_table_compressed(&path, &t, 300).unwrap();
        let meta = table_meta(&path).unwrap();
        let mut at = meta.file_bytes() - meta.scan_bytes();
        let mut per_col = vec![0u64; 4];
        for chunk in 0..meta.chunk_lens.len() {
            for (col, total) in per_col.iter_mut().enumerate() {
                let (off, len) = meta.column_block_range(chunk, col).unwrap();
                assert_eq!(off, at, "chunk {chunk} col {col}");
                at += len;
                *total += len;
            }
        }
        assert_eq!(at, meta.file_bytes());
        assert_eq!(meta.column_scan_bytes().unwrap(), per_col);
        assert_eq!(meta.column_block_range(99, 0), None);
        assert_eq!(meta.column_block_range(0, 9), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_file_bytes_matches_reality() {
        let path = tmp("meta.bin");
        let t = sample(17);
        write_table(&path, &t).unwrap();
        let r = ChunkedReader::open(&path, 5).unwrap();
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert_eq!(r.meta().file_bytes(), on_disk);
        std::fs::remove_file(&path).ok();
    }

    /// Scan via the split fetch/decode path, returning the reassembled
    /// table and the reader's byte counter.
    fn scan_fetched(path: &Path, chunk: usize, attrs: Option<&[usize]>) -> (PointTable, u64) {
        let mut r = ChunkedReader::open_projected(path, chunk, attrs).unwrap();
        let mut whole: Option<PointTable> = None;
        while let Some(enc) = r.fetch_chunk().unwrap() {
            assert!(enc.rows() <= chunk);
            let dec = enc.decode().unwrap();
            assert_eq!(dec.col_decode.len(), r.column_io().len());
            match &mut whole {
                Some(w) => w.extend(&dec.table),
                None => whole = Some(dec.table),
            }
        }
        (whole.unwrap(), r.bytes_read())
    }

    #[test]
    fn fetch_then_decode_matches_next_chunk_in_every_format() {
        let t = sample(1_003);
        let v1 = tmp("fetch-v1.bin");
        let v2 = tmp("fetch-v2.binz");
        let v3 = tmp("fetch-v3.binz");
        write_table(&v1, &t).unwrap();
        write_table_compressed_v2(&v2, &t, 400).unwrap();
        write_table_compressed(&v3, &t, 400).unwrap();
        for path in [&v1, &v2, &v3] {
            for delivery in [7usize, 399, 400, 401, 5000] {
                let (direct, direct_bytes) = scan_projected(path, delivery, None);
                let (fetched, fetched_bytes) = scan_fetched(path, delivery, None);
                assert_eq!(direct, fetched, "{path:?} delivery {delivery}");
                assert_eq!(direct_bytes, fetched_bytes, "{path:?} delivery {delivery}");
            }
            // Projection pushdown flows through the fetch path too.
            let (direct, db) = scan_projected(path, 333, Some(&[1]));
            let (fetched, fb) = scan_fetched(path, 333, Some(&[1]));
            assert_eq!(direct, fetched, "{path:?} projected");
            assert_eq!(db, fb, "{path:?} projected");
        }
        for p in [v1, v2, v3] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn fetch_chunk_interleaves_with_next_chunk() {
        // The streaming executor reads a small decoded sample chunk, then
        // switches to encoded fetches: rows the sample left behind in a
        // partially-delivered decoded block must carry over.
        let t = sample(1_000);
        type Writer = fn(&Path, &PointTable, usize) -> io::Result<()>;
        let writers: [(&str, Writer); 2] = [
            ("mix-v2.binz", write_table_compressed_v2),
            ("mix-v3.binz", write_table_compressed),
        ];
        for (name, write) in writers {
            let path = tmp(name);
            write(&path, &t, 256).unwrap();
            let mut r = ChunkedReader::open(&path, 64).unwrap();
            let mut whole = r.next_chunk().unwrap().unwrap();
            assert_eq!(whole.len(), 64);
            r.set_chunk_rows(301);
            while let Some(enc) = r.fetch_chunk().unwrap() {
                whole.extend(&enc.decode().unwrap().table);
            }
            assert_eq!(whole, t, "{name}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v1_scans_attribute_their_decode_time() {
        // Raw columns still pay a bulk LE conversion per chunk; it must
        // show up in the decode counters, not hide inside read time.
        let path = tmp("v1-decode-time.bin");
        let t = sample(100_000);
        write_table(&path, &t).unwrap();
        let mut r = ChunkedReader::open(&path, 10_000).unwrap();
        while r.next_chunk().unwrap().is_some() {}
        assert!(r.decode_time() > Duration::ZERO);
        let per_col: Duration = r.column_io().iter().map(|c| c.decode_time).sum();
        assert_eq!(per_col, r.decode_time());
        std::fs::remove_file(&path).ok();
    }
}
