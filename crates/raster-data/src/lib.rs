#![forbid(unsafe_code)]
//! Point data management for the raster-join reproduction.
//!
//! The paper evaluates on two columnar point data sets — NYC yellow taxi
//! (~868 M trips) and geo-tagged Twitter (~2.29 B tweets) — stored as
//! binary columns on disk and loaded column-wise (§7.1). Neither raw data
//! set is redistributable, so this crate provides:
//!
//! * [`table`] — the in-memory columnar [`table::PointTable`] (x/y plus
//!   f32 attribute columns) and prefix/range slicing used to sweep input
//!   sizes;
//! * [`filter`] — attribute predicates (`>, ≥, <, ≤, =`) evaluated before
//!   the vertex-shader transform, as §5 "Query Parameters" prescribes;
//! * [`generators`] — synthetic [`generators::TaxiModel`] and
//!   [`generators::TwitterModel`] workloads reproducing the documented
//!   spatial skew (hotspots over Manhattan / large US cities), plus a
//!   uniform control;
//! * [`disk`] — the binary columnar on-disk format with a chunked reader
//!   for the disk-resident experiment (Fig. 13);
//! * [`polygons`] — the polygonal query sets: stand-ins for NYC
//!   neighborhoods (260) and US counties (3 945) built with the §7.4
//!   Voronoi-merge generator, plus arbitrary-count generation for Fig. 10.

pub mod codec;
pub mod csv;
pub mod disk;
pub mod faults;
pub mod filter;
pub mod generators;
pub mod polygons;
pub mod table;

pub use filter::{CmpOp, Predicate};
pub use table::PointTable;
