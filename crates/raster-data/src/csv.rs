//! CSV ingestion for point tables.
//!
//! §7.1: "The data is available as a collection of csv files, which when
//! converted to binary occupy 72 GB." This module is that conversion
//! path: a streaming CSV reader that projects a coordinate pair plus a
//! chosen set of numeric attribute columns into a [`PointTable`] (and on
//! to [`crate::disk::write_table`] for the binary columnar format).
//!
//! The dialect is the plain comma-separated one of the TLC trip records:
//! no quoted fields containing commas are needed for numeric projections,
//! but quoted fields are tolerated and stripped. Malformed rows are
//! counted and skipped rather than aborting a multi-gigabyte load.

use crate::table::PointTable;
use raster_geom::Point;
use std::io::{self, BufRead};
use std::path::Path;

/// Projection description: which CSV columns to load.
#[derive(Debug, Clone)]
pub struct CsvSpec {
    /// Zero-based column index of the x coordinate (e.g. longitude).
    pub x_col: usize,
    /// Zero-based column index of the y coordinate (e.g. latitude).
    pub y_col: usize,
    /// `(column index, attribute name)` pairs for f32 attribute columns.
    pub attrs: Vec<(usize, String)>,
    /// Whether the first line is a header to skip.
    pub has_header: bool,
}

impl CsvSpec {
    pub fn new(x_col: usize, y_col: usize) -> Self {
        CsvSpec {
            x_col,
            y_col,
            attrs: Vec::new(),
            has_header: true,
        }
    }

    pub fn attr(mut self, col: usize, name: &str) -> Self {
        self.attrs.push((col, name.to_string()));
        self
    }

    pub fn without_header(mut self) -> Self {
        self.has_header = false;
        self
    }
}

/// Load statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsvStats {
    pub rows_ok: u64,
    pub rows_skipped: u64,
}

fn field(fields: &[&str], i: usize) -> Option<f64> {
    fields
        .get(i)
        .map(|f| f.trim().trim_matches('"'))
        .and_then(|f| f.parse::<f64>().ok())
}

/// Parse CSV text from any reader into a table.
pub fn read_csv<R: BufRead>(reader: R, spec: &CsvSpec) -> io::Result<(PointTable, CsvStats)> {
    let names: Vec<&str> = spec.attrs.iter().map(|(_, n)| n.as_str()).collect();
    let mut table = PointTable::with_capacity(1024, &names);
    let mut stats = CsvStats::default();
    let mut attr_buf = vec![0f32; spec.attrs.len()];
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 && spec.has_header {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let Some(x) = field(&fields, spec.x_col) else {
            stats.rows_skipped += 1;
            continue;
        };
        let Some(y) = field(&fields, spec.y_col) else {
            stats.rows_skipped += 1;
            continue;
        };
        let mut ok = true;
        for (k, (col, _)) in spec.attrs.iter().enumerate() {
            match field(&fields, *col) {
                Some(v) => attr_buf[k] = v as f32,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            stats.rows_skipped += 1;
            continue;
        }
        table.push(Point::new(x, y), &attr_buf);
        stats.rows_ok += 1;
    }
    Ok((table, stats))
}

/// Load a CSV file from disk.
pub fn read_csv_file(path: &Path, spec: &CsvSpec) -> io::Result<(PointTable, CsvStats)> {
    let f = std::fs::File::open(path)?;
    read_csv(io::BufReader::new(f), spec)
}

/// Write a table back out as CSV (header + rows) — the inverse path, for
/// interoperability and test fixtures.
pub fn write_csv<W: io::Write>(mut w: W, table: &PointTable) -> io::Result<()> {
    write!(w, "x,y")?;
    for name in table.attr_names() {
        write!(w, ",{name}")?;
    }
    writeln!(w)?;
    for i in 0..table.len() {
        let p = table.point(i);
        write!(w, "{},{}", p.x, p.y)?;
        for c in 0..table.attr_count() {
            write!(w, ",{}", table.attr(c)[i])?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
pickup_lon,pickup_lat,fare,passengers,comment
1.5,2.5,12.0,2,ok
3.25,-4.0,7.5,1,\"quoted, but unused\"
bad,9.9,1.0,1,skipme
7.0,8.0,not_a_number,3,skipme
9.0,10.0,5.0,4,ok
";

    fn spec() -> CsvSpec {
        CsvSpec::new(0, 1).attr(2, "fare").attr(3, "passengers")
    }

    #[test]
    fn loads_valid_rows_and_skips_bad_ones() {
        let (t, stats) = read_csv(SAMPLE.as_bytes(), &spec()).unwrap();
        assert_eq!(stats.rows_ok, 3);
        assert_eq!(stats.rows_skipped, 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.point(0), Point::new(1.5, 2.5));
        assert_eq!(t.attr(0), &[12.0, 7.5, 5.0]);
        assert_eq!(t.attr(1), &[2.0, 1.0, 4.0]);
        assert_eq!(t.attr_names(), vec!["fare", "passengers"]);
    }

    #[test]
    fn header_skipping_is_configurable() {
        let body = "1.0,2.0\n3.0,4.0\n";
        let (with_header, _) = read_csv(body.as_bytes(), &CsvSpec::new(0, 1)).unwrap();
        assert_eq!(with_header.len(), 1); // first line eaten as header
        let (no_header, _) =
            read_csv(body.as_bytes(), &CsvSpec::new(0, 1).without_header()).unwrap();
        assert_eq!(no_header.len(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let (t, _) = read_csv(SAMPLE.as_bytes(), &spec()).unwrap();
        let mut buf = Vec::new();
        write_csv(&mut buf, &t).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("x,y,fare,passengers\n"));
        let spec2 = CsvSpec::new(0, 1).attr(2, "fare").attr(3, "passengers");
        let (t2, stats2) = read_csv(text.as_bytes(), &spec2).unwrap();
        assert_eq!(stats2.rows_skipped, 0);
        assert_eq!(t, t2);
    }

    #[test]
    fn empty_input_yields_empty_table() {
        let (t, stats) = read_csv("".as_bytes(), &CsvSpec::new(0, 1)).unwrap();
        assert!(t.is_empty());
        assert_eq!(stats, CsvStats::default());
    }

    #[test]
    fn missing_columns_skip_row() {
        let body = "1.0\n1.0,2.0\n";
        let (t, stats) = read_csv(body.as_bytes(), &CsvSpec::new(0, 1).without_header()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(stats.rows_skipped, 1);
    }
}
