//! Attribute filter predicates.
//!
//! §5 "Query Parameters": constraints on point attributes are evaluated on
//! the GPU *before* the vertex-shader transform; failing points are clipped
//! away and never rasterized. The implementation supports the same
//! comparison set as the paper (`>, ≥, <, ≤, =`) and conjunctions of up to
//! [`MAX_CONSTRAINTS`] predicates (the paper's compile-time VBO limit of
//! five attributes, §6.1 "Query Options").

use crate::table::PointTable;

/// Maximum number of conjunctive constraints per query (§6.1 fixes the
/// vertex size at compile time, limiting constraints to 5 attributes).
pub const MAX_CONSTRAINTS: usize = 5;

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Gt,
    Ge,
    Lt,
    Le,
    Eq,
}

impl CmpOp {
    #[inline]
    pub fn eval(&self, lhs: f32, rhs: f32) -> bool {
        match self {
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => lhs == rhs,
        }
    }
}

/// One attribute constraint: `attr <op> value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    pub attr: usize,
    pub op: CmpOp,
    pub value: f32,
}

impl Predicate {
    pub fn new(attr: usize, op: CmpOp, value: f32) -> Self {
        Predicate { attr, op, value }
    }

    #[inline]
    pub fn eval(&self, table: &PointTable, row: usize) -> bool {
        self.op.eval(table.attr(self.attr)[row], self.value)
    }
}

/// Conjunction of predicates over one row — the vertex-shader discard test.
#[inline]
pub fn passes(table: &PointTable, row: usize, preds: &[Predicate]) -> bool {
    preds.iter().all(|p| p.eval(table, row))
}

/// The set of distinct attribute columns referenced by the predicates —
/// these are the extra columns that must be shipped to the GPU (§5: "the
/// data corresponding to the attributes over which constraints are imposed
/// is also transferred").
pub fn attrs_referenced(preds: &[Predicate]) -> Vec<usize> {
    let mut a: Vec<usize> = preds.iter().map(|p| p.attr).collect();
    a.sort_unstable();
    a.dedup();
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use raster_geom::Point;

    fn table() -> PointTable {
        let mut t = PointTable::with_capacity(3, &["fare", "hour"]);
        t.push(Point::new(0.0, 0.0), &[5.0, 1.0]);
        t.push(Point::new(0.0, 0.0), &[15.0, 12.0]);
        t.push(Point::new(0.0, 0.0), &[25.0, 23.0]);
        t
    }

    #[test]
    fn all_operators() {
        assert!(CmpOp::Gt.eval(2.0, 1.0));
        assert!(!CmpOp::Gt.eval(1.0, 1.0));
        assert!(CmpOp::Ge.eval(1.0, 1.0));
        assert!(CmpOp::Lt.eval(0.0, 1.0));
        assert!(CmpOp::Le.eval(1.0, 1.0));
        assert!(CmpOp::Eq.eval(3.0, 3.0));
        assert!(!CmpOp::Eq.eval(3.0, 3.5));
    }

    #[test]
    fn predicate_against_table() {
        let t = table();
        let p = Predicate::new(0, CmpOp::Gt, 10.0);
        assert!(!p.eval(&t, 0));
        assert!(p.eval(&t, 1));
        assert!(p.eval(&t, 2));
    }

    #[test]
    fn conjunction_semantics() {
        let t = table();
        let preds = [
            Predicate::new(0, CmpOp::Gt, 10.0),
            Predicate::new(1, CmpOp::Lt, 20.0),
        ];
        assert!(!passes(&t, 0, &preds)); // fare too low
        assert!(passes(&t, 1, &preds));
        assert!(!passes(&t, 2, &preds)); // hour too high
        assert!(passes(&t, 0, &[])); // empty conjunction is true
    }

    #[test]
    fn referenced_attrs_deduplicated() {
        let preds = [
            Predicate::new(3, CmpOp::Gt, 0.0),
            Predicate::new(1, CmpOp::Lt, 0.0),
            Predicate::new(3, CmpOp::Le, 5.0),
        ];
        assert_eq!(attrs_referenced(&preds), vec![1, 3]);
    }
}
