//! Synthetic workload generators.
//!
//! The paper's data sets matter to its evaluation through scale and spatial
//! skew: "Taxi trips are mostly concentrated in Lower Manhattan, Midtown,
//! and airports, while there is a denser concentration of tweets around
//! large cities" (§7.1). These generators reproduce exactly that skew:
//! Gaussian hotspot mixtures over a city extent (taxi) and Zipf-weighted
//! city hotspots over a continental extent (twitter). Records are emitted
//! in time order so a table prefix equals a time-range selection (the
//! paper's input-size sweep mechanism, §7.1 "Queries").

use crate::table::PointTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raster_geom::{BBox, Point};

/// Generated coordinates are snapped to this binary grid (2⁻¹⁰ m ≈ 1 mm).
///
/// Real position data has finite sensor precision — published NYC-taxi
/// coordinates carry ~1 cm of it, GPS far less — whereas a raw
/// `gen_range` f64 carries a full 52-bit random mantissa that no sensor
/// ever produced. Snapping reproduces the realistic property that
/// coordinate columns sit on a fixed-point grid, which the on-disk
/// fixed-point codec (`crate::codec`) detects and packs losslessly; the
/// grid is a power of two so every snapped value (and its scaled integer)
/// is exactly representable and the snap is the last lossy step — disk
/// round trips stay bit-exact.
pub const COORD_GRID: f64 = 1.0 / 1024.0;

/// Snap a coordinate down to [`COORD_GRID`] (floor, so values inside an
/// extent whose minimum lies on the grid stay inside).
fn snap(v: f64) -> f64 {
    (v / COORD_GRID).floor() * COORD_GRID
}

fn snap_point(x: f64, y: f64) -> Point {
    Point::new(snap(x), snap(y))
}

/// Snap `v ∈ [lo, hi)` without leaving the interval: flooring can land
/// below an off-grid `lo`, in which case the next grid line up is taken
/// (still ≤ the original value's cell); an interval narrower than one
/// grid cell keeps the value unsnapped rather than exiting it.
fn snap_into(v: f64, lo: f64, hi: f64) -> f64 {
    let s = snap(v);
    if s >= lo {
        s
    } else if s + COORD_GRID < hi {
        s + COORD_GRID
    } else {
        v
    }
}

fn snap_point_into(x: f64, y: f64, extent: &BBox) -> Point {
    Point::new(
        snap_into(x, extent.min.x, extent.max.x),
        snap_into(y, extent.min.y, extent.max.y),
    )
}

/// World extent of the NYC-like workload: ~58 km square in metres, sized so
/// that the paper's default ε = 20 m needs a ≈4k×4k canvas (§4.2, Fig. 6).
pub fn nyc_extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(58_000.0, 58_000.0))
}

/// World extent of the US-like workload: ~4500 × 2900 km in metres, sized
/// so the paper's ε = 1 km county default fits a single 8192² canvas.
pub fn us_extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(4_500_000.0, 2_900_000.0))
}

/// Attribute schema of the taxi-like table: exactly five filterable
/// attributes (the §6.1 constraint limit used by Fig. 11).
pub const TAXI_ATTRS: [&str; 5] = ["fare", "tip", "distance", "passengers", "hour"];

/// Attribute schema of the twitter-like table.
pub const TWITTER_ATTRS: [&str; 3] = ["favorites", "retweets", "hour"];

/// A Gaussian hotspot: relative weight plus center/spread in world units.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    pub center: Point,
    pub sigma: f64,
    pub weight: f64,
}

fn sample_gaussian<R: Rng>(rng: &mut R, c: Point, sigma: f64, extent: &BBox) -> Point {
    // Box–Muller, rejected until inside the extent.
    loop {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = (-2.0 * u1.ln()).sqrt() * sigma;
        let p = snap_point(c.x + r * u2.cos(), c.y + r * u2.sin());
        if extent.contains(p) {
            return p;
        }
    }
}

/// NYC-taxi-like generator: Lower-Manhattan/Midtown/airport hotspots plus a
/// thin uniform background.
pub struct TaxiModel {
    extent: BBox,
    hotspots: Vec<Hotspot>,
    background_weight: f64,
}

impl Default for TaxiModel {
    fn default() -> Self {
        let e = nyc_extent();
        let w = e.width();
        let h = e.height();
        let at = |fx: f64, fy: f64| Point::new(e.min.x + fx * w, e.min.y + fy * h);
        TaxiModel {
            extent: e,
            hotspots: vec![
                // Lower Manhattan: dominant, tight.
                Hotspot {
                    center: at(0.45, 0.42),
                    sigma: 0.02 * w,
                    weight: 0.40,
                },
                // Midtown.
                Hotspot {
                    center: at(0.47, 0.50),
                    sigma: 0.025 * w,
                    weight: 0.30,
                },
                // Two airports: compact, far from the core.
                Hotspot {
                    center: at(0.68, 0.38),
                    sigma: 0.008 * w,
                    weight: 0.10,
                },
                Hotspot {
                    center: at(0.62, 0.55),
                    sigma: 0.008 * w,
                    weight: 0.08,
                },
                // Outer boroughs.
                Hotspot {
                    center: at(0.55, 0.30),
                    sigma: 0.06 * w,
                    weight: 0.07,
                },
            ],
            background_weight: 0.05,
        }
    }
}

impl TaxiModel {
    pub fn extent(&self) -> BBox {
        self.extent
    }

    /// Generate `n` trips deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> PointTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = PointTable::with_capacity(n, &TAXI_ATTRS);
        let total_w: f64 =
            self.hotspots.iter().map(|h| h.weight).sum::<f64>() + self.background_weight;
        for i in 0..n {
            let mut pick = rng.gen_range(0.0..total_w);
            let mut p = None;
            for hs in &self.hotspots {
                if pick < hs.weight {
                    p = Some(sample_gaussian(&mut rng, hs.center, hs.sigma, &self.extent));
                    break;
                }
                pick -= hs.weight;
            }
            let p = p.unwrap_or_else(|| {
                snap_point_into(
                    rng.gen_range(self.extent.min.x..self.extent.max.x),
                    rng.gen_range(self.extent.min.y..self.extent.max.y),
                    &self.extent,
                )
            });
            let distance = rng.gen_range(0.5f32..20.0);
            let fare = 2.5 + distance * rng.gen_range(1.8f32..3.0);
            let tip = fare * rng.gen_range(0.0f32..0.3);
            let passengers = rng.gen_range(1u32..=6) as f32;
            // Time order: hour-of-week advances monotonically with i so
            // that a prefix is a time-interval selection.
            let hour = (i as f64 / n.max(1) as f64 * 168.0) as f32;
            t.push(p, &[fare, tip, distance, passengers, hour]);
        }
        t
    }
}

/// Twitter-like generator: Zipf-weighted city hotspots over the US extent.
pub struct TwitterModel {
    extent: BBox,
    cities: Vec<Hotspot>,
}

impl Default for TwitterModel {
    fn default() -> Self {
        let e = us_extent();
        let w = e.width();
        let h = e.height();
        let at = |fx: f64, fy: f64| Point::new(e.min.x + fx * w, e.min.y + fy * h);
        // 16 "cities" at fixed pseudo-geographic positions, Zipf weights.
        let positions = [
            (0.88, 0.62),
            (0.15, 0.55),
            (0.70, 0.72),
            (0.62, 0.30),
            (0.85, 0.45),
            (0.10, 0.75),
            (0.58, 0.55),
            (0.78, 0.28),
            (0.35, 0.60),
            (0.90, 0.75),
            (0.50, 0.40),
            (0.25, 0.35),
            (0.65, 0.62),
            (0.80, 0.55),
            (0.42, 0.72),
            (0.55, 0.20),
        ];
        let cities = positions
            .iter()
            .enumerate()
            .map(|(i, &(fx, fy))| Hotspot {
                center: at(fx, fy),
                sigma: 0.01 * w,
                weight: 1.0 / (i + 1) as f64, // Zipf(1)
            })
            .collect();
        TwitterModel { extent: e, cities }
    }
}

impl TwitterModel {
    pub fn extent(&self) -> BBox {
        self.extent
    }

    pub fn generate(&self, n: usize, seed: u64) -> PointTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = PointTable::with_capacity(n, &TWITTER_ATTRS);
        let total_w: f64 = self.cities.iter().map(|c| c.weight).sum::<f64>() + 0.3;
        for i in 0..n {
            let mut pick = rng.gen_range(0.0..total_w);
            let mut p = None;
            for c in &self.cities {
                if pick < c.weight {
                    p = Some(sample_gaussian(&mut rng, c.center, c.sigma, &self.extent));
                    break;
                }
                pick -= c.weight;
            }
            let p = p.unwrap_or_else(|| {
                snap_point_into(
                    rng.gen_range(self.extent.min.x..self.extent.max.x),
                    rng.gen_range(self.extent.min.y..self.extent.max.y),
                    &self.extent,
                )
            });
            let favorites = rng.gen_range(0u32..500) as f32;
            let retweets = (favorites * rng.gen_range(0.0f32..0.5)).floor();
            let hour = (i as f64 / n.max(1) as f64 * 168.0) as f32;
            t.push(p, &[favorites, retweets, hour]);
        }
        t
    }
}

/// Uniform control workload over an arbitrary extent (no attributes).
pub fn uniform_points(n: usize, extent: &BBox, seed: u64) -> PointTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = PointTable::with_capacity(n, &[]);
    for _ in 0..n {
        t.push(
            snap_point_into(
                rng.gen_range(extent.min.x..extent.max.x),
                rng.gen_range(extent.min.y..extent.max.y),
                extent,
            ),
            &[],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxi_points_stay_in_extent() {
        let m = TaxiModel::default();
        let t = m.generate(5_000, 42);
        assert_eq!(t.len(), 5_000);
        let e = m.extent();
        for i in 0..t.len() {
            assert!(e.contains(t.point(i)));
        }
    }

    #[test]
    fn taxi_generation_is_deterministic() {
        let m = TaxiModel::default();
        assert_eq!(m.generate(1_000, 7), m.generate(1_000, 7));
        assert_ne!(m.generate(1_000, 7), m.generate(1_000, 8));
    }

    #[test]
    fn taxi_data_is_skewed() {
        // The Manhattan-core quarter of the extent must hold far more than
        // a quarter of the points.
        let m = TaxiModel::default();
        let t = m.generate(20_000, 1);
        let e = m.extent();
        let core = BBox::new(
            Point::new(e.min.x + 0.35 * e.width(), e.min.y + 0.35 * e.height()),
            Point::new(e.min.x + 0.60 * e.width(), e.min.y + 0.60 * e.height()),
        );
        let inside = (0..t.len()).filter(|&i| core.contains(t.point(i))).count();
        assert!(
            inside as f64 > 0.5 * t.len() as f64,
            "only {inside} of {} points in the core",
            t.len()
        );
    }

    #[test]
    fn taxi_hours_are_monotone() {
        let t = TaxiModel::default().generate(1_000, 3);
        let hour = t.attr_index("hour").unwrap();
        let hours = t.attr(hour);
        assert!(hours.windows(2).all(|w| w[0] <= w[1]));
        // Prefix = earliest time range.
        let p = t.prefix(100);
        assert!(p.attr(hour).iter().all(|&h| h <= hours[99]));
    }

    #[test]
    fn twitter_points_cluster_on_cities() {
        let m = TwitterModel::default();
        let t = m.generate(10_000, 9);
        // At least 60% of tweets within 3σ of some city center.
        let near = (0..t.len())
            .filter(|&i| {
                let p = t.point(i);
                m.cities
                    .iter()
                    .any(|c| p.distance(c.center) < 3.0 * c.sigma)
            })
            .count();
        assert!(near as f64 > 0.6 * t.len() as f64, "near = {near}");
    }

    #[test]
    fn snapping_never_exits_an_off_grid_extent() {
        // A public-API extent whose minimum is not a multiple of the
        // snap grid: flooring alone would push points below it.
        let e = BBox::new(Point::new(0.0003, 10.0007), Point::new(5.0003, 12.0007));
        let t = uniform_points(5_000, &e, 11);
        for i in 0..t.len() {
            assert!(e.contains(t.point(i)), "{:?} outside {e:?}", t.point(i));
        }
        // Degenerate sub-grid interval: values stay put, still inside.
        let tiny = BBox::new(Point::new(0.00031, 0.00031), Point::new(0.00049, 0.00049));
        let t = uniform_points(100, &tiny, 12);
        for i in 0..t.len() {
            assert!(tiny.contains(t.point(i)));
        }
    }

    #[test]
    fn uniform_fills_extent_roughly_evenly() {
        let e = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let t = uniform_points(10_000, &e, 5);
        // Each quadrant should hold 25% ± 5%.
        let mut quad = [0usize; 4];
        for i in 0..t.len() {
            let p = t.point(i);
            let qi = (p.x >= 50.0) as usize + 2 * (p.y >= 50.0) as usize;
            quad[qi] += 1;
        }
        for q in quad {
            assert!((q as f64 - 2_500.0).abs() < 500.0, "quadrant {q}");
        }
    }

    #[test]
    fn schemas_match_constants() {
        let t = TaxiModel::default().generate(1, 0);
        assert_eq!(t.attr_count(), TAXI_ATTRS.len());
        assert_eq!(t.attr_names(), TAXI_ATTRS.to_vec());
        let tw = TwitterModel::default().generate(1, 0);
        assert_eq!(tw.attr_names(), TWITTER_ATTRS.to_vec());
    }
}
