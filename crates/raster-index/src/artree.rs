//! An aggregate R-tree (aR-tree) over points — the §2 related-work
//! baseline.
//!
//! "The aRtree \[46\] enhances the R-tree structure by keeping aggregate
//! information in intermediate nodes. These algorithms … have three key
//! limitations: queries are constrained to rectangular regions, …" — §2.
//!
//! This implementation exists to *reproduce that argument*, not to win:
//! it answers rectangular COUNT/SUM range queries in logarithmic time by
//! pruning with per-node aggregates, and the only way it can serve an
//! arbitrary polygon is through its MBR (or a rectangle decomposition),
//! which the `polygon_count_via_mbr` method exposes so the examples and
//! benches can quantify the error against raster join. Built with
//! Sort-Tile-Recursive (STR) bulk loading.

use raster_geom::{BBox, Point};

const NODE_FANOUT: usize = 16;
const LEAF_CAPACITY: usize = 64;

enum Node {
    Leaf {
        bbox: BBox,
        count: u64,
        sum: f64,
        /// (point, weight) pairs.
        entries: Vec<(Point, f32)>,
    },
    Inner {
        bbox: BBox,
        count: u64,
        sum: f64,
        children: Vec<Node>,
    },
}

impl Node {
    fn bbox(&self) -> &BBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Inner { bbox, .. } => bbox,
        }
    }

    fn count(&self) -> u64 {
        match self {
            Node::Leaf { count, .. } | Node::Inner { count, .. } => *count,
        }
    }

    fn sum(&self) -> f64 {
        match self {
            Node::Leaf { sum, .. } | Node::Inner { sum, .. } => *sum,
        }
    }
}

/// Aggregate result of a range query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RangeAggregate {
    pub count: u64,
    pub sum: f64,
}

/// The aR-tree.
pub struct ARTree {
    root: Option<Node>,
    len: usize,
    /// Nodes visited by the last query (diagnostics: the pruning power
    /// the aggregate annotations buy).
    nodes_visited: std::cell::Cell<usize>,
}

impl ARTree {
    /// STR bulk load over `(point, weight)` records.
    pub fn build(records: &[(Point, f32)]) -> Self {
        let len = records.len();
        if records.is_empty() {
            return ARTree {
                root: None,
                len: 0,
                nodes_visited: std::cell::Cell::new(0),
            };
        }
        // Leaf level: sort by x, slice into vertical strips, sort each
        // strip by y, chop into leaves.
        let mut recs: Vec<(Point, f32)> = records.to_vec();
        let n_leaves = len.div_ceil(LEAF_CAPACITY);
        let n_strips = (n_leaves as f64).sqrt().ceil() as usize;
        let strip_len = len.div_ceil(n_strips);
        recs.sort_by(|a, b| {
            a.0.x
                .partial_cmp(&b.0.x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut leaves: Vec<Node> = Vec::with_capacity(n_leaves);
        for strip in recs.chunks(strip_len.max(1)) {
            let mut strip = strip.to_vec();
            strip.sort_by(|a, b| {
                a.0.y
                    .partial_cmp(&b.0.y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for chunk in strip.chunks(LEAF_CAPACITY) {
                let bbox = BBox::from_points(chunk.iter().map(|(p, _)| *p));
                let count = chunk.len() as u64;
                let sum = chunk.iter().map(|(_, w)| *w as f64).sum();
                leaves.push(Node::Leaf {
                    bbox,
                    count,
                    sum,
                    entries: chunk.to_vec(),
                });
            }
        }
        // Pack upward until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_FANOUT));
            // Keep spatial locality: sort nodes by bbox center x then
            // tile, mirroring STR at each level.
            level.sort_by(|a, b| {
                a.bbox()
                    .center()
                    .x
                    .partial_cmp(&b.bbox().center().x)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Chunk the x-sorted level directly (single-axis STR at the
            // upper levels — packing quality is adequate for the
            // baseline role).
            let mut regrouped: Vec<Node> = Vec::with_capacity(level.len());
            regrouped.append(&mut level);
            for chunk in regrouped.chunks_mut(NODE_FANOUT) {
                let mut bbox = BBox::empty();
                let mut count = 0u64;
                let mut sum = 0f64;
                let children: Vec<Node> = chunk
                    .iter_mut()
                    .map(|c| {
                        std::mem::replace(
                            c,
                            Node::Leaf {
                                bbox: BBox::empty(),
                                count: 0,
                                sum: 0.0,
                                entries: Vec::new(),
                            },
                        )
                    })
                    .collect();
                for c in &children {
                    bbox.union(c.bbox());
                    count += c.count();
                    sum += c.sum();
                }
                next.push(Node::Inner {
                    bbox,
                    count,
                    sum,
                    children,
                });
            }
            level = next;
        }
        ARTree {
            root: level.pop(),
            len,
            nodes_visited: std::cell::Cell::new(0),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact COUNT/SUM over a rectangular range — the query class the
    /// aR-tree exists for. Fully-contained subtrees are answered from
    /// their aggregate annotations without descending.
    pub fn range_aggregate(&self, range: &BBox) -> RangeAggregate {
        let mut out = RangeAggregate::default();
        let mut visited = 0usize;
        if let Some(root) = &self.root {
            Self::query(root, range, &mut out, &mut visited);
        }
        self.nodes_visited.set(visited);
        out
    }

    fn contains_bbox(outer: &BBox, inner: &BBox) -> bool {
        outer.contains(inner.min) && outer.contains(inner.max)
    }

    fn query(node: &Node, range: &BBox, out: &mut RangeAggregate, visited: &mut usize) {
        *visited += 1;
        if !range.intersects(node.bbox()) {
            return;
        }
        if Self::contains_bbox(range, node.bbox()) {
            out.count += node.count();
            out.sum += node.sum();
            return;
        }
        match node {
            Node::Leaf { entries, .. } => {
                for (p, w) in entries {
                    if range.contains(*p) {
                        out.count += 1;
                        out.sum += *w as f64;
                    }
                }
            }
            Node::Inner { children, .. } => {
                for c in children {
                    Self::query(c, range, out, visited);
                }
            }
        }
    }

    /// Nodes touched by the most recent query.
    pub fn last_nodes_visited(&self) -> usize {
        self.nodes_visited.get()
    }

    /// The only route to a polygon query this structure offers: aggregate
    /// over the polygon's MBR. Exact for rectangles, an overcount for
    /// everything else — the §2 limitation the raster join removes.
    pub fn polygon_count_via_mbr(&self, poly: &raster_geom::Polygon) -> u64 {
        self.range_aggregate(&poly.bbox()).count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn records(n: usize, seed: u64) -> Vec<(Point, f32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (
                    Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)),
                    rng.gen_range(0.0f32..10.0),
                )
            })
            .collect()
    }

    #[test]
    fn range_count_matches_brute_force() {
        let recs = records(5_000, 1);
        let tree = ARTree::build(&recs);
        assert_eq!(tree.len(), 5_000);
        for (qmin, qmax) in [
            ((10.0, 10.0), (30.0, 40.0)),
            ((0.0, 0.0), (100.0, 100.0)),
            ((50.0, 50.0), (50.1, 50.1)),
            ((95.0, 95.0), (99.0, 99.0)),
        ] {
            let range = BBox::new(Point::new(qmin.0, qmin.1), Point::new(qmax.0, qmax.1));
            let got = tree.range_aggregate(&range);
            let want_count = recs.iter().filter(|(p, _)| range.contains(*p)).count() as u64;
            let want_sum: f64 = recs
                .iter()
                .filter(|(p, _)| range.contains(*p))
                .map(|(_, w)| *w as f64)
                .sum();
            assert_eq!(got.count, want_count);
            assert!((got.sum - want_sum).abs() < 1e-6 * want_sum.abs().max(1.0));
        }
    }

    #[test]
    fn aggregates_prune_fully_contained_subtrees() {
        let recs = records(20_000, 2);
        let tree = ARTree::build(&recs);
        // Whole-extent query must be answered from the root aggregate.
        let full = BBox::new(Point::new(-1.0, -1.0), Point::new(101.0, 101.0));
        let out = tree.range_aggregate(&full);
        assert_eq!(out.count, 20_000);
        assert_eq!(tree.last_nodes_visited(), 1, "root aggregate suffices");
        // A mid-size query visits far fewer nodes than there are points.
        let mid = BBox::new(Point::new(20.0, 20.0), Point::new(60.0, 60.0));
        tree.range_aggregate(&mid);
        assert!(tree.last_nodes_visited() < 2_000);
    }

    #[test]
    fn polygon_via_mbr_overcounts_non_rectangular_shapes() {
        use raster_geom::Polygon;
        let recs = records(10_000, 3);
        let tree = ARTree::build(&recs);
        // A triangle: MBR has twice its area → MBR count ≈ 2× true count.
        let tri = Polygon::from_coords(0, vec![(10.0, 10.0), (90.0, 10.0), (10.0, 90.0)]);
        let mbr_count = tree.polygon_count_via_mbr(&tri);
        let true_count = recs.iter().filter(|(p, _)| tri.contains(*p)).count() as u64;
        assert!(mbr_count > true_count, "MBR must overcount");
        let ratio = mbr_count as f64 / true_count.max(1) as f64;
        assert!(
            ratio > 1.5,
            "triangle overcount should approach 2x, got {ratio:.2}"
        );
    }

    #[test]
    fn empty_tree_answers_zero() {
        let tree = ARTree::build(&[]);
        assert!(tree.is_empty());
        let out = tree.range_aggregate(&BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        assert_eq!(out, RangeAggregate::default());
    }

    #[test]
    fn single_point_tree() {
        let tree = ARTree::build(&[(Point::new(5.0, 5.0), 2.5)]);
        let hit = tree.range_aggregate(&BBox::new(Point::new(4.0, 4.0), Point::new(6.0, 6.0)));
        assert_eq!(hit.count, 1);
        assert!((hit.sum - 2.5).abs() < 1e-9);
        let miss = tree.range_aggregate(&BBox::new(Point::new(6.0, 6.0), Point::new(7.0, 7.0)));
        assert_eq!(miss.count, 0);
    }
}
