//! A packed R-tree over polygon MBRs (Sort-Tile-Recursive bulk load).
//!
//! The paper's §2 positions raster join against "existing spatial join
//! techniques, common in database systems", whose filtering step walks an
//! R-tree \[24\] of minimum bounding rectangles. This module provides that
//! classic substrate so the [`two-step` baseline](../raster-join) can be
//! measured against the fused raster operators.
//!
//! The tree is bulk-loaded with STR (Leutenegger et al.): entries are
//! sorted by x-center into vertical slices, each slice sorted by y-center
//! and packed into full leaves; upper levels pack the level below the same
//! way. Bulk loading matches the paper's setting — the polygon set is
//! known per query and built on the fly — and produces near-100% node
//! occupancy, which favours the baseline (a conservative comparison).
//!
//! Storage is a flat arena per level: node children are contiguous ranges
//! in the level below, so traversal is index arithmetic on two `Vec`s with
//! no pointer chasing.

use raster_geom::{BBox, Point, Polygon};

/// Maximum children per node (R-tree fanout). 16 keeps the tree shallow
/// for the paper's polygon cardinalities (260–64K) while bounding the
/// per-node scan.
pub const FANOUT: usize = 16;

/// One tree node: an MBR plus a contiguous child range in the level below
/// (or in the entry array, for leaves).
#[derive(Debug, Clone, Copy)]
struct Node {
    bbox: BBox,
    first: u32,
    count: u32,
}

/// A packed STR R-tree over `(MBR, polygon id)` entries.
pub struct RTree {
    /// `levels[0]` are the leaves; `levels.last()` is the root level
    /// (length ≤ FANOUT, usually 1).
    levels: Vec<Vec<Node>>,
    /// Leaf payload: polygon MBR + id, in packed order.
    entries: Vec<(BBox, u32)>,
}

impl RTree {
    /// Bulk-load the tree over the polygons' bounding boxes.
    pub fn build(polys: &[Polygon]) -> Self {
        let entries: Vec<(BBox, u32)> = polys.iter().map(|p| (p.bbox(), p.id())).collect();
        Self::from_entries(entries)
    }

    /// Bulk-load from pre-computed `(bbox, id)` entries.
    pub fn from_entries(mut entries: Vec<(BBox, u32)>) -> Self {
        if entries.is_empty() {
            return RTree {
                levels: Vec::new(),
                entries,
            };
        }
        str_pack(&mut entries, |e| e.0.center());

        // Leaf level: consecutive runs of FANOUT entries.
        let mut level: Vec<Node> = entries
            .chunks(FANOUT)
            .enumerate()
            .map(|(i, chunk)| Node {
                bbox: union_of(chunk.iter().map(|e| e.0)),
                first: (i * FANOUT) as u32,
                count: chunk.len() as u32,
            })
            .collect();

        let mut levels = Vec::new();
        while level.len() > 1 {
            // Pack this level into parents with the same STR order. The
            // level is already in STR order from the packing below it, so
            // re-tiling keeps spatial locality.
            let mut idx: Vec<(BBox, u32)> = level
                .iter()
                .enumerate()
                .map(|(i, n)| (n.bbox, i as u32))
                .collect();
            str_pack(&mut idx, |e| e.0.center());
            // Re-order the level to the packed order, then build parents
            // over contiguous runs.
            let reordered: Vec<Node> = idx.iter().map(|&(_, i)| level[i as usize]).collect();
            let parents: Vec<Node> = reordered
                .chunks(FANOUT)
                .enumerate()
                .map(|(i, chunk)| Node {
                    bbox: union_of(chunk.iter().map(|n| n.bbox)),
                    first: (i * FANOUT) as u32,
                    count: chunk.len() as u32,
                })
                .collect();
            levels.push(reordered);
            level = parents;
        }
        levels.push(level);
        RTree { levels, entries }
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Tree height in node levels (leaves = 1). Zero when empty.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Total node count across all levels.
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Memory footprint in bytes (nodes + entries), for the transfer model.
    pub fn byte_size(&self) -> usize {
        self.node_count() * std::mem::size_of::<Node>()
            + self.entries.len() * std::mem::size_of::<(BBox, u32)>()
    }

    /// Root MBR of the whole tree, or the empty box.
    pub fn bbox(&self) -> BBox {
        self.levels
            .last()
            .map(|l| union_of(l.iter().map(|n| n.bbox)))
            .unwrap_or_else(BBox::empty)
    }

    /// Collect ids of entries whose MBR contains `p` (the R-tree filtering
    /// step for a point probe). Appends to `out` so the caller can reuse
    /// one workhorse buffer across probes.
    pub fn candidates_into(&self, p: Point, out: &mut Vec<u32>) {
        let Some(root) = self.levels.last() else {
            return;
        };
        // Explicit stack of (level, node index) avoids recursion; depth is
        // log_FANOUT(n) so the stack stays tiny.
        let mut stack: Vec<(usize, u32)> = Vec::with_capacity(2 * self.levels.len());
        let top = self.levels.len() - 1;
        for (i, n) in root.iter().enumerate() {
            if n.bbox.contains(p) {
                stack.push((top, i as u32));
            }
        }
        while let Some((lvl, ni)) = stack.pop() {
            let n = self.levels[lvl][ni as usize];
            if lvl == 0 {
                let s = n.first as usize;
                let e = s + n.count as usize;
                for &(b, id) in &self.entries[s..e] {
                    if b.contains(p) {
                        out.push(id);
                    }
                }
            } else {
                let s = n.first as usize;
                let e = s + n.count as usize;
                for (i, c) in self.levels[lvl - 1][s..e].iter().enumerate() {
                    if c.bbox.contains(p) {
                        stack.push((lvl - 1, (s + i) as u32));
                    }
                }
            }
        }
    }

    /// Convenience wrapper allocating a fresh candidate vector.
    pub fn candidates(&self, p: Point) -> Vec<u32> {
        let mut out = Vec::new();
        self.candidates_into(p, &mut out);
        out
    }

    /// Visit ids of entries whose MBR intersects `query` (window probe).
    pub fn query_bbox(&self, query: &BBox, mut visit: impl FnMut(u32)) {
        let Some(root) = self.levels.last() else {
            return;
        };
        let mut stack: Vec<(usize, u32)> = Vec::with_capacity(2 * self.levels.len());
        let top = self.levels.len() - 1;
        for (i, n) in root.iter().enumerate() {
            if n.bbox.intersects(query) {
                stack.push((top, i as u32));
            }
        }
        while let Some((lvl, ni)) = stack.pop() {
            let n = self.levels[lvl][ni as usize];
            let s = n.first as usize;
            let e = s + n.count as usize;
            if lvl == 0 {
                for &(b, id) in &self.entries[s..e] {
                    if b.intersects(query) {
                        visit(id);
                    }
                }
            } else {
                for (i, c) in self.levels[lvl - 1][s..e].iter().enumerate() {
                    if c.bbox.intersects(query) {
                        stack.push((lvl - 1, (s + i) as u32));
                    }
                }
            }
        }
    }
}

/// Reorder `items` into STR packing order: sort by x-center, cut into
/// vertical slices of `slice_len = ceil(sqrt(n / FANOUT)) * FANOUT`
/// entries, and sort each slice by y-center.
fn str_pack<T>(items: &mut [T], center: impl Fn(&T) -> Point) {
    let n = items.len();
    if n <= FANOUT {
        return;
    }
    let nleaves = n.div_ceil(FANOUT);
    let slices = (nleaves as f64).sqrt().ceil() as usize;
    let slice_len = nleaves.div_ceil(slices) * FANOUT;
    items.sort_by(|a, b| {
        center(a)
            .x
            .partial_cmp(&center(b).x)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for slice in items.chunks_mut(slice_len) {
        slice.sort_by(|a, b| {
            center(a)
                .y
                .partial_cmp(&center(b).y)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
}

fn union_of(boxes: impl Iterator<Item = BBox>) -> BBox {
    let mut u = BBox::empty();
    for b in boxes {
        u.union(&b);
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_polys(nx: u32, ny: u32) -> Vec<Polygon> {
        // nx × ny unit squares tiling [0, nx] × [0, ny].
        let mut polys = Vec::new();
        for gy in 0..ny {
            for gx in 0..nx {
                let (x, y) = (gx as f64, gy as f64);
                polys.push(Polygon::from_coords(
                    gy * nx + gx,
                    vec![(x, y), (x + 1.0, y), (x + 1.0, y + 1.0), (x, y + 1.0)],
                ));
            }
        }
        polys
    }

    #[test]
    fn empty_tree_behaves() {
        let t = RTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.candidates(Point::new(0.0, 0.0)).is_empty());
        let mut seen = 0;
        t.query_bbox(
            &BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            |_| seen += 1,
        );
        assert_eq!(seen, 0);
        assert!(t.bbox().is_empty());
    }

    #[test]
    fn single_entry_tree() {
        let polys = grid_polys(1, 1);
        let t = RTree::build(&polys);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.candidates(Point::new(0.5, 0.5)), vec![0]);
        assert!(t.candidates(Point::new(1.5, 0.5)).is_empty());
    }

    #[test]
    fn point_candidates_match_brute_force() {
        let polys = grid_polys(23, 17); // non-power-of-two, partial leaves
        let t = RTree::build(&polys);
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = Vec::new();
        for _ in 0..500 {
            let p = Point::new(rng.gen_range(-1.0..24.0), rng.gen_range(-1.0..18.0));
            buf.clear();
            t.candidates_into(p, &mut buf);
            buf.sort_unstable();
            let mut expect: Vec<u32> = polys
                .iter()
                .filter(|poly| poly.bbox().contains(p))
                .map(|poly| poly.id())
                .collect();
            expect.sort_unstable();
            assert_eq!(buf, expect, "probe {p:?}");
        }
    }

    #[test]
    fn bbox_query_matches_brute_force() {
        let polys = grid_polys(16, 16);
        let t = RTree::build(&polys);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let a = Point::new(rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0));
            let b = Point::new(rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0));
            let q = BBox::new(a, b);
            let mut got = Vec::new();
            t.query_bbox(&q, |id| got.push(id));
            got.sort_unstable();
            let mut expect: Vec<u32> = polys
                .iter()
                .filter(|poly| poly.bbox().intersects(&q))
                .map(|poly| poly.id())
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "window {q:?}");
        }
    }

    #[test]
    fn height_is_logarithmic() {
        // 4096 entries at fanout 16 → exactly 3 levels (16³ = 4096).
        let polys = grid_polys(64, 64);
        let t = RTree::build(&polys);
        assert_eq!(t.height(), 3);
        // One more entry forces a fourth level... not quite: 4097 leaves?
        // 4097 entries → 257 leaves → 17 nodes → 2 roots → 1: height 4.
        let polys = grid_polys(64, 64)
            .into_iter()
            .chain(std::iter::once(Polygon::from_coords(
                4096,
                vec![(0.0, 0.0), (64.0, 0.0), (64.0, 64.0), (0.0, 64.0)],
            )))
            .collect::<Vec<_>>();
        assert_eq!(RTree::build(&polys).height(), 4);
    }

    #[test]
    fn root_bbox_covers_all_entries() {
        let polys = grid_polys(9, 5);
        let t = RTree::build(&polys);
        let b = t.bbox();
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(9.0, 5.0)));
        assert!(!b.contains(Point::new(9.1, 5.0)));
    }

    #[test]
    fn node_occupancy_is_high() {
        // STR packs full nodes: total nodes close to n / FANOUT per level.
        let polys = grid_polys(40, 40); // 1600 entries
        let t = RTree::build(&polys);
        // 1600/16 = 100 leaves, 100/16 = 7 parents, 1 root.
        assert_eq!(t.node_count(), 100 + 7 + 1);
        assert!(t.byte_size() > 0);
    }

    #[test]
    fn overlapping_entries_all_reported() {
        // Concentric boxes: a center probe must report every id.
        let polys: Vec<Polygon> = (0..50)
            .map(|i| {
                let r = 1.0 + i as f64;
                Polygon::from_coords(i, vec![(-r, -r), (r, -r), (r, r), (-r, r)])
            })
            .collect();
        let t = RTree::build(&polys);
        let mut got = t.candidates(Point::new(0.0, 0.0));
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<u32>>());
        // A probe between ring i and i+1 sees only the larger boxes.
        let got = t.candidates(Point::new(10.2, 0.0));
        assert_eq!(got.len(), 50 - 10);
    }
}
