//! A uniform grid over *points*, CSR layout.
//!
//! Zhang et al. [69, 72] — the materializing-join baseline of Table 2 —
//! index the point data set with a space-partitioning structure to batch
//! point-in-polygon work. This point grid supplies that batching: points
//! are bucketed by cell so that a polygon's candidate points are found by
//! scanning only the cells its MBR overlaps.

use raster_geom::{BBox, Point};

/// Points bucketed into a uniform `nx`×`ny` grid, stored CSR.
pub struct PointGrid {
    extent: BBox,
    nx: u32,
    ny: u32,
    offsets: Vec<u32>,
    /// Point indices, grouped by cell.
    entries: Vec<u32>,
}

impl PointGrid {
    pub fn build(points: &[Point], extent: BBox, nx: u32, ny: u32) -> Self {
        assert!(nx > 0 && ny > 0);
        let ncells = nx as usize * ny as usize;
        let cell_of = |p: Point| -> Option<usize> {
            if !extent.contains(p) {
                return None;
            }
            let cw = extent.width() / nx as f64;
            let ch = extent.height() / ny as f64;
            let cx = (((p.x - extent.min.x) / cw) as u32).min(nx - 1);
            let cy = (((p.y - extent.min.y) / ch) as u32).min(ny - 1);
            Some((cy * nx + cx) as usize)
        };

        let mut counts = vec![0u32; ncells];
        for &p in points {
            if let Some(c) = cell_of(p) {
                counts[c] += 1;
            }
        }
        let mut offsets = vec![0u32; ncells + 1];
        for i in 0..ncells {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut cursors = offsets[..ncells].to_vec();
        let mut entries = vec![0u32; offsets[ncells] as usize];
        for (i, &p) in points.iter().enumerate() {
            if let Some(c) = cell_of(p) {
                entries[cursors[c] as usize] = i as u32;
                cursors[c] += 1;
            }
        }
        PointGrid {
            extent,
            nx,
            ny,
            offsets,
            entries,
        }
    }

    pub fn extent(&self) -> BBox {
        self.extent
    }

    /// Point indices in cell `(cx, cy)`.
    pub fn cell(&self, cx: u32, cy: u32) -> &[u32] {
        let c = (cy * self.nx + cx) as usize;
        &self.entries[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Indices of all points whose cell overlaps `query` (a superset of the
    /// points actually inside `query`).
    pub fn points_in_bbox(&self, query: &BBox) -> Vec<u32> {
        let Some(overlap) = self.extent.intersection(query) else {
            return Vec::new();
        };
        let cw = self.extent.width() / self.nx as f64;
        let ch = self.extent.height() / self.ny as f64;
        let cx0 = (((overlap.min.x - self.extent.min.x) / cw) as u32).min(self.nx - 1);
        let cy0 = (((overlap.min.y - self.extent.min.y) / ch) as u32).min(self.ny - 1);
        let cx1 = (((overlap.max.x - self.extent.min.x) / cw) as u32).min(self.nx - 1);
        let cy1 = (((overlap.max.y - self.extent.min.y) / ch) as u32).min(self.ny - 1);
        let mut out = Vec::new();
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                out.extend_from_slice(self.cell(cx, cy));
            }
        }
        out
    }

    /// Number of indexed points (points outside the extent are dropped,
    /// mirroring viewport clipping).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    #[test]
    fn every_point_lands_in_its_cell() {
        let pts = vec![
            Point::new(0.5, 0.5),
            Point::new(9.5, 9.5),
            Point::new(5.0, 5.0),
            Point::new(0.5, 9.5),
        ];
        let g = PointGrid::build(&pts, extent(), 10, 10);
        assert_eq!(g.len(), 4);
        assert_eq!(g.cell(0, 0), &[0]);
        assert_eq!(g.cell(9, 9), &[1]);
        assert_eq!(g.cell(5, 5), &[2]);
        assert_eq!(g.cell(0, 9), &[3]);
    }

    #[test]
    fn outside_points_are_clipped() {
        let pts = vec![Point::new(-1.0, 5.0), Point::new(5.0, 5.0)];
        let g = PointGrid::build(&pts, extent(), 4, 4);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn bbox_query_is_superset_of_exact() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64 + 0.5, (i / 10) as f64 + 0.5))
            .collect();
        let g = PointGrid::build(&pts, extent(), 5, 5);
        let q = BBox::new(Point::new(2.0, 2.0), Point::new(5.0, 5.0));
        let cand = g.points_in_bbox(&q);
        // Every point actually inside q must be among the candidates.
        for (i, p) in pts.iter().enumerate() {
            if q.contains(*p) {
                assert!(cand.contains(&(i as u32)), "missing point {i}");
            }
        }
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let pts = vec![Point::new(1.0, 1.0)];
        let g = PointGrid::build(&pts, extent(), 4, 4);
        let q = BBox::new(Point::new(20.0, 20.0), Point::new(30.0, 30.0));
        assert!(g.points_in_bbox(&q).is_empty());
    }
}
