#![forbid(unsafe_code)]
//! Spatial indexes for the raster-join baselines.
//!
//! The paper uses a uniform **grid index** over the polygon set everywhere
//! an index is needed (§6.1, §6.2): it stores, per grid cell, the polygons
//! whose geometry (or MBR) intersects that cell, giving O(1) candidate
//! lookup per point. Two build strategies are reproduced:
//!
//! * **MBR assignment** — a polygon is listed in every cell its bounding
//!   box touches. This is the on-the-fly GPU build of §6.1.
//! * **Exact assignment** — cells are additionally tested against the
//!   actual geometry, the optimisation the CPU baseline applies (§7.1).
//!
//! The storage layout is the flat two-pass (count, then scatter) CSR array
//! the paper builds on the GPU because "dynamic memory allocation is not
//! supported"; [`GridIndex::build`] accepts a worker count and reproduces
//! the two passes in parallel.

pub mod artree;
pub mod cube;
pub mod grid;
pub mod point_grid;
pub mod quadtree;
pub mod rtree;

pub use artree::ARTree;
pub use cube::AggQuadtree;
pub use grid::{AssignMode, GridIndex};
pub use point_grid::PointGrid;
pub use quadtree::PointQuadtree;
pub use rtree::RTree;
