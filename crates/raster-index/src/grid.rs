//! The polygon grid index (§6.1 "Polygon Index").

use raster_geom::{BBox, Point, Polygon};
use raster_gpu::raster::rasterize_segment_conservative;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, Ordering};

/// How polygons are assigned to grid cells during the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignMode {
    /// Every cell intersecting the polygon's MBR (the GPU build of §6.1).
    Mbr,
    /// Only cells intersecting the actual geometry (the optimised CPU
    /// build of §7.1) — fewer candidates per lookup, slower to build.
    Exact,
}

/// Uniform grid over the polygon set, stored as a CSR (offsets + entries)
/// flat array exactly like the two-pass GPU build the paper describes.
pub struct GridIndex {
    extent: BBox,
    nx: u32,
    ny: u32,
    offsets: Vec<u32>,
    entries: Vec<u32>,
}

/// Enumerate the grid cells a polygon is assigned to under `mode`,
/// invoking `f(cx, cy)` once per cell.
///
/// Exact mode uses the decomposition: a cell intersects the polygon iff
/// the boundary passes through it (found by conservative rasterization of
/// every edge onto the cell grid) or it lies fully inside (its center is
/// interior — found row by row from the even–odd crossings of the
/// boundary with the row's center line). This is O(boundary cells +
/// interior cells + rows × vertices), versus O(MBR cells × vertices) for
/// per-cell polygon clipping.
fn for_each_cell(
    poly: &Polygon,
    extent: &BBox,
    nx: u32,
    ny: u32,
    mode: AssignMode,
    mut f: impl FnMut(u32, u32),
) {
    let cw = extent.width() / nx as f64;
    let ch = extent.height() / ny as f64;
    let b = poly.bbox();
    let clamp_x = |v: f64| (v.floor().max(0.0) as u32).min(nx - 1);
    let clamp_y = |v: f64| (v.floor().max(0.0) as u32).min(ny - 1);
    let cx0 = clamp_x((b.min.x - extent.min.x) / cw);
    let cy0 = clamp_y((b.min.y - extent.min.y) / ch);
    let cx1 = clamp_x((b.max.x - extent.min.x) / cw);
    let cy1 = clamp_y((b.max.y - extent.min.y) / ch);

    match mode {
        AssignMode::Mbr => {
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    f(cx, cy);
                }
            }
        }
        AssignMode::Exact => {
            let mut cells: HashSet<(u32, u32)> = HashSet::new();
            // Boundary cells: supercover traversal of every edge in grid
            // coordinates.
            let to_grid = |p: Point| ((p.x - extent.min.x) / cw, (p.y - extent.min.y) / ch);
            for (ea, eb) in poly.all_edges() {
                let ga = to_grid(ea);
                let gb = to_grid(eb);
                rasterize_segment_conservative(ga, gb, nx, ny, |x, y| {
                    cells.insert((x, y));
                });
            }
            // Interior cells: per row, even–odd crossings of the boundary
            // with the row-center line give the inside intervals; cells
            // whose centers fall inside are fully interior or boundary
            // (the set dedups).
            let edges = poly.all_edges();
            let mut xs: Vec<f64> = Vec::new();
            for cy in cy0..=cy1 {
                let line_y = extent.min.y + (cy as f64 + 0.5) * ch;
                xs.clear();
                for &(p, q) in &edges {
                    if (p.y > line_y) != (q.y > line_y) {
                        let t = (line_y - p.y) / (q.y - p.y);
                        xs.push(p.x + t * (q.x - p.x));
                    }
                }
                xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                for pair in xs.chunks_exact(2) {
                    // Cells whose center x ∈ (pair[0], pair[1]).
                    let gx0 = (pair[0] - extent.min.x) / cw - 0.5;
                    let gx1 = (pair[1] - extent.min.x) / cw - 0.5;
                    let k0 = clamp_x(gx0.ceil());
                    let k1 = clamp_x(gx1.floor());
                    for cx in k0..=k1 {
                        let center_x = extent.min.x + (cx as f64 + 0.5) * cw;
                        if center_x > pair[0] && center_x < pair[1] {
                            cells.insert((cx, cy));
                        }
                    }
                }
            }
            for (cx, cy) in cells {
                f(cx, cy);
            }
        }
    }
}

impl GridIndex {
    /// Build the index over `polys` with an `nx`×`ny` grid spanning
    /// `extent`, using `workers` threads for both passes.
    pub fn build(
        polys: &[Polygon],
        extent: BBox,
        nx: u32,
        ny: u32,
        mode: AssignMode,
        workers: usize,
    ) -> Self {
        assert!(nx > 0 && ny > 0);
        let ncells = nx as usize * ny as usize;
        let counts: Vec<AtomicU32> = (0..ncells).map(|_| AtomicU32::new(0)).collect();

        // Pass 1: count entries per cell (the size-estimation pass).
        raster_gpu::exec::parallel_ranges(polys.len(), workers, |s, e| {
            for poly in &polys[s..e] {
                for_each_cell(poly, &extent, nx, ny, mode, |cx, cy| {
                    counts[(cy * nx + cx) as usize].fetch_add(1, Ordering::Relaxed);
                });
            }
        });

        // Prefix sum → offsets.
        let mut offsets = vec![0u32; ncells + 1];
        for i in 0..ncells {
            offsets[i + 1] = offsets[i] + counts[i].load(Ordering::Relaxed);
        }
        let total = offsets[ncells] as usize;

        // Pass 2: scatter polygon IDs using per-cell atomic cursors.
        let cursors: Vec<AtomicU32> = offsets[..ncells]
            .iter()
            .map(|&o| AtomicU32::new(o))
            .collect();
        let entries: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(u32::MAX)).collect();
        raster_gpu::exec::parallel_ranges(polys.len(), workers, |s, e| {
            for poly in &polys[s..e] {
                for_each_cell(poly, &extent, nx, ny, mode, |cx, cy| {
                    let slot = cursors[(cy * nx + cx) as usize].fetch_add(1, Ordering::Relaxed);
                    entries[slot as usize].store(poly.id(), Ordering::Relaxed);
                });
            }
        });

        let entries: Vec<u32> = entries
            .into_iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        GridIndex {
            extent,
            nx,
            ny,
            offsets,
            entries,
        }
    }

    pub fn extent(&self) -> BBox {
        self.extent
    }

    pub fn resolution(&self) -> (u32, u32) {
        (self.nx, self.ny)
    }

    /// Total number of (cell, polygon) assignments.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Memory footprint in bytes (what the GPU allocation would be).
    pub fn byte_size(&self) -> usize {
        (self.offsets.len() + self.entries.len()) * 4
    }

    #[inline]
    fn cell_of(&self, p: Point) -> Option<usize> {
        if !self.extent.contains(p) {
            return None;
        }
        let cw = self.extent.width() / self.nx as f64;
        let ch = self.extent.height() / self.ny as f64;
        let cx = (((p.x - self.extent.min.x) / cw) as u32).min(self.nx - 1);
        let cy = (((p.y - self.extent.min.y) / ch) as u32).min(self.ny - 1);
        Some((cy * self.nx + cx) as usize)
    }

    /// Candidate polygon IDs for a point: the contents of its grid cell
    /// (`Ind.query(x, y)` in Procedure JoinPoint). Empty when the point is
    /// outside the indexed extent.
    #[inline]
    pub fn candidates(&self, p: Point) -> &[u32] {
        match self.cell_of(p) {
            Some(c) => {
                let s = self.offsets[c] as usize;
                let e = self.offsets[c + 1] as usize;
                &self.entries[s..e]
            }
            None => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn polys() -> Vec<Polygon> {
        vec![
            // Left half.
            Polygon::from_coords(
                0,
                vec![(0.0, 0.0), (50.0, 0.0), (50.0, 100.0), (0.0, 100.0)],
            ),
            // Top-right quadrant.
            Polygon::from_coords(
                1,
                vec![(50.0, 50.0), (100.0, 50.0), (100.0, 100.0), (50.0, 100.0)],
            ),
            // Small triangle bottom-right.
            Polygon::from_coords(2, vec![(60.0, 10.0), (90.0, 10.0), (75.0, 40.0)]),
        ]
    }

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn candidates_contain_true_owner() {
        for mode in [AssignMode::Mbr, AssignMode::Exact] {
            let idx = GridIndex::build(&polys(), extent(), 16, 16, mode, 4);
            let probes = [
                (Point::new(10.0, 10.0), 0u32),
                (Point::new(75.0, 75.0), 1),
                (Point::new(75.0, 15.0), 2),
            ];
            for (p, owner) in probes {
                assert!(
                    idx.candidates(p).contains(&owner),
                    "{mode:?}: {p:?} should list {owner}"
                );
            }
        }
    }

    #[test]
    fn exact_assignment_produces_no_more_entries_than_mbr() {
        let mbr = GridIndex::build(&polys(), extent(), 32, 32, AssignMode::Mbr, 4);
        let exact = GridIndex::build(&polys(), extent(), 32, 32, AssignMode::Exact, 4);
        assert!(exact.entry_count() <= mbr.entry_count());
        // The triangle's MBR corners are not in the triangle: exact must
        // be strictly smaller here.
        assert!(exact.entry_count() < mbr.entry_count());
    }

    #[test]
    fn exact_assignment_never_misses_a_containing_cell() {
        // Every point strictly inside polygon 2 must find it among the
        // candidates, at several grid resolutions.
        let ps = polys();
        for dim in [8u32, 16, 64, 128] {
            let idx = GridIndex::build(&ps, extent(), dim, dim, AssignMode::Exact, 2);
            for gy in 0..40 {
                for gx in 0..40 {
                    let p = Point::new(60.0 + gx as f64 * 0.74, 10.0 + gy as f64 * 0.72);
                    if ps[2].contains(p) {
                        assert!(
                            idx.candidates(p).contains(&2),
                            "dim {dim}: {p:?} misses polygon 2"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exact_handles_concave_polygons() {
        // A "U": cells in the notch must not list the polygon.
        let u = Polygon::from_coords(
            0,
            vec![
                (10.0, 10.0),
                (90.0, 10.0),
                (90.0, 90.0),
                (60.0, 90.0),
                (60.0, 40.0),
                (40.0, 40.0),
                (40.0, 90.0),
                (10.0, 90.0),
            ],
        );
        let idx = GridIndex::build(
            std::slice::from_ref(&u),
            extent(),
            20,
            20,
            AssignMode::Exact,
            1,
        );
        // Deep inside the notch (not touching the boundary cells).
        assert!(idx.candidates(Point::new(50.0, 80.0)).is_empty());
        // Inside the arms and the base.
        assert!(idx.candidates(Point::new(25.0, 80.0)).contains(&0));
        assert!(idx.candidates(Point::new(75.0, 80.0)).contains(&0));
        assert!(idx.candidates(Point::new(50.0, 20.0)).contains(&0));
    }

    #[test]
    fn outside_extent_has_no_candidates() {
        let idx = GridIndex::build(&polys(), extent(), 8, 8, AssignMode::Mbr, 2);
        assert!(idx.candidates(Point::new(-5.0, 3.0)).is_empty());
        assert!(idx.candidates(Point::new(50.0, 101.0)).is_empty());
    }

    #[test]
    fn single_threaded_and_parallel_builds_agree() {
        let a = GridIndex::build(&polys(), extent(), 16, 16, AssignMode::Exact, 1);
        let b = GridIndex::build(&polys(), extent(), 16, 16, AssignMode::Exact, 8);
        assert_eq!(a.entry_count(), b.entry_count());
        // Candidate *sets* per probe cell must match (order may differ).
        for gy in 0..16 {
            for gx in 0..16 {
                let p = Point::new(gx as f64 * 6.25 + 3.0, gy as f64 * 6.25 + 3.0);
                let mut ca: Vec<u32> = a.candidates(p).to_vec();
                let mut cb: Vec<u32> = b.candidates(p).to_vec();
                ca.sort_unstable();
                cb.sort_unstable();
                assert_eq!(ca, cb, "cell ({gx},{gy})");
            }
        }
    }

    #[test]
    fn no_unwritten_slots_after_scatter() {
        let idx = GridIndex::build(&polys(), extent(), 64, 64, AssignMode::Mbr, 8);
        assert!(idx.entries.iter().all(|&e| e != u32::MAX));
    }

    #[test]
    fn byte_size_counts_offsets_and_entries() {
        let idx = GridIndex::build(&polys(), extent(), 4, 4, AssignMode::Mbr, 1);
        assert_eq!(idx.byte_size(), (idx.offsets.len() + idx.entries.len()) * 4);
        assert_eq!(idx.resolution(), (4, 4));
    }

    #[test]
    fn partitioning_polygons_index_touches_every_cell() {
        // Two polygons tiling the extent: every cell lists at least one.
        let halves = vec![
            Polygon::from_coords(
                0,
                vec![(0.0, 0.0), (50.0, 0.0), (50.0, 100.0), (0.0, 100.0)],
            ),
            Polygon::from_coords(
                1,
                vec![(50.0, 0.0), (100.0, 0.0), (100.0, 100.0), (50.0, 100.0)],
            ),
        ];
        let idx = GridIndex::build(&halves, extent(), 10, 10, AssignMode::Exact, 2);
        for c in 0..100 {
            assert!(
                idx.offsets[c + 1] > idx.offsets[c],
                "cell {c} has no entries"
            );
        }
    }
}
