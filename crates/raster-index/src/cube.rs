//! A Nanocube/Hashedcubes-style pre-aggregation structure — the other §2
//! related-work baseline.
//!
//! "Compact data structures such as Nanocubes \[33\] and Hashedcubes \[45\]
//! … pre-aggregate records at various spatial resolutions and store this
//! summarized information in a hierarchy of rectangular regions
//! (maintained using a quadtree)" with three limitations the paper keeps
//! returning to: (1) only rectangular query regions, (2) one query per
//! region, (3) approximation error fixed by the quadtree resolution and
//! not dynamically boundable.
//!
//! [`AggQuadtree`] is that structure reduced to its spatial dimension: a
//! complete quadtree of COUNT aggregates built once over the point set.
//! Rectangular queries decompose into canonical nodes; arbitrary polygons
//! can only be *approximated* by collecting cells whose centers fall
//! inside ([`AggQuadtree::polygon_count_approx`]), with error fixed by
//! the build-time depth — exactly the limitation §2 contrasts with the
//! raster join's dynamically chosen ε.

use raster_geom::{BBox, Point, Polygon};

/// A complete pre-aggregated quadtree of COUNT values.
pub struct AggQuadtree {
    extent: BBox,
    depth: u32,
    /// Per level: a dense row-major grid of counts; level k has 2^k × 2^k
    /// cells. `levels[0]` is the root.
    levels: Vec<Vec<u64>>,
}

impl AggQuadtree {
    /// Build with `depth` subdivision levels (leaf grid = 2^depth per
    /// axis). The paper's point about pre-computation cost is visible in
    /// the signature: *all* levels are materialised up front.
    pub fn build(points: &[Point], extent: BBox, depth: u32) -> Self {
        assert!(depth <= 14, "leaf grid would exceed memory");
        let leaf_dim = 1usize << depth;
        let mut leaf = vec![0u64; leaf_dim * leaf_dim];
        let cw = extent.width() / leaf_dim as f64;
        let ch = extent.height() / leaf_dim as f64;
        for &p in points {
            if !extent.contains(p) {
                continue;
            }
            let cx = (((p.x - extent.min.x) / cw) as usize).min(leaf_dim - 1);
            let cy = (((p.y - extent.min.y) / ch) as usize).min(leaf_dim - 1);
            leaf[cy * leaf_dim + cx] += 1;
        }
        // Reduce upward.
        let mut levels = vec![leaf];
        for l in (0..depth).rev() {
            let dim = 1usize << l;
            let child = &levels[0];
            let cdim = dim * 2;
            let mut cur = vec![0u64; dim * dim];
            for y in 0..dim {
                for x in 0..dim {
                    cur[y * dim + x] = child[(2 * y) * cdim + 2 * x]
                        + child[(2 * y) * cdim + 2 * x + 1]
                        + child[(2 * y + 1) * cdim + 2 * x]
                        + child[(2 * y + 1) * cdim + 2 * x + 1];
                }
            }
            levels.insert(0, cur);
        }
        AggQuadtree {
            extent,
            depth,
            levels,
        }
    }

    pub fn depth(&self) -> u32 {
        self.depth
    }

    pub fn extent(&self) -> BBox {
        self.extent
    }

    /// Total stored aggregate values (the memory-cost side of §2's
    /// pre-computation argument).
    pub fn stored_values(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    fn cell_bbox(&self, level: u32, x: usize, y: usize) -> BBox {
        let dim = 1usize << level;
        let cw = self.extent.width() / dim as f64;
        let ch = self.extent.height() / dim as f64;
        let min = Point::new(
            self.extent.min.x + x as f64 * cw,
            self.extent.min.y + y as f64 * ch,
        );
        BBox::new(min, Point::new(min.x + cw, min.y + ch))
    }

    fn count_at(&self, level: u32, x: usize, y: usize) -> u64 {
        let dim = 1usize << level;
        self.levels[level as usize][y * dim + x]
    }

    /// Exact count of leaf cells *fully contained* in `range` plus leaf
    /// cells partially overlapping counted by center — i.e. the
    /// structure's native approximate rectangle query. (Nanocubes snap
    /// ranges to the quadtree grid; so do we.)
    pub fn range_count_approx(&self, range: &BBox) -> u64 {
        let mut total = 0u64;
        self.recurse(0, 0, 0, range, &mut total);
        total
    }

    fn recurse(&self, level: u32, x: usize, y: usize, range: &BBox, total: &mut u64) {
        let cb = self.cell_bbox(level, x, y);
        if !cb.intersects(range) {
            return;
        }
        let contained = range.contains(cb.min) && range.contains(cb.max);
        if contained {
            *total += self.count_at(level, x, y);
            return;
        }
        if level == self.depth {
            // Partially overlapped leaf: snap by center (the fixed,
            // unboundable error of §2).
            if range.contains(cb.center()) {
                *total += self.count_at(level, x, y);
            }
            return;
        }
        for dy in 0..2 {
            for dx in 0..2 {
                self.recurse(level + 1, 2 * x + dx, 2 * y + dy, range, total);
            }
        }
    }

    /// Approximate a polygon query by summing leaf cells whose centers
    /// lie inside the polygon. The error is governed by the *build-time*
    /// leaf size — it cannot be tightened per query, unlike raster
    /// join's ε.
    pub fn polygon_count_approx(&self, poly: &Polygon) -> u64 {
        let dim = 1usize << self.depth;
        let cw = self.extent.width() / dim as f64;
        let ch = self.extent.height() / dim as f64;
        let b = poly.bbox();
        let x0 = (((b.min.x - self.extent.min.x) / cw).floor().max(0.0) as usize).min(dim - 1);
        let y0 = (((b.min.y - self.extent.min.y) / ch).floor().max(0.0) as usize).min(dim - 1);
        let x1 = (((b.max.x - self.extent.min.x) / cw).ceil().max(0.0) as usize).min(dim - 1);
        let y1 = (((b.max.y - self.extent.min.y) / ch).ceil().max(0.0) as usize).min(dim - 1);
        let mut total = 0u64;
        for y in y0..=y1 {
            for x in x0..=x1 {
                let c = self.count_at(self.depth, x, y);
                if c == 0 {
                    continue;
                }
                let center = self.cell_bbox(self.depth, x, y).center();
                if poly.contains(center) {
                    total += c;
                }
            }
        }
        total
    }

    /// The leaf cell side length — the frozen accuracy of this structure.
    pub fn leaf_cell_size(&self) -> (f64, f64) {
        let dim = (1usize << self.depth) as f64;
        (self.extent.width() / dim, self.extent.height() / dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(64.0, 64.0))
    }

    fn points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..64.0), rng.gen_range(0.0..64.0)))
            .collect()
    }

    #[test]
    fn levels_are_consistent_reductions() {
        let pts = points(4_000, 1);
        let c = AggQuadtree::build(&pts, extent(), 5);
        // Every level sums to the total.
        for l in 0..=5u32 {
            let dim = 1usize << l;
            let total: u64 = (0..dim * dim).map(|i| c.levels[l as usize][i]).sum();
            assert_eq!(total, 4_000, "level {l}");
        }
        assert_eq!(c.stored_values(), (0..=5).map(|l| 1usize << (2 * l)).sum());
    }

    #[test]
    fn grid_aligned_rectangles_are_exact() {
        let pts = points(5_000, 2);
        let c = AggQuadtree::build(&pts, extent(), 6);
        // Query exactly one quadrant: grid-aligned → exact.
        let q = BBox::new(Point::new(0.0, 0.0), Point::new(32.0, 32.0));
        let want = pts.iter().filter(|p| q.contains(**p)).count() as u64;
        assert_eq!(c.range_count_approx(&q), want);
    }

    #[test]
    fn misaligned_rectangles_err_by_at_most_the_boundary_cells() {
        let pts = points(8_000, 3);
        let c = AggQuadtree::build(&pts, extent(), 6); // 1×1 leaf cells
        let q = BBox::new(Point::new(10.3, 9.7), Point::new(41.6, 50.2));
        let got = c.range_count_approx(&q);
        // All points in the query dilated/eroded by one leaf cell.
        let inner = BBox::new(Point::new(11.3, 10.7), Point::new(40.6, 49.2));
        let outer = BBox::new(Point::new(9.3, 8.7), Point::new(42.6, 51.2));
        let lo = pts.iter().filter(|p| inner.contains(**p)).count() as u64;
        let hi = pts.iter().filter(|p| outer.contains(**p)).count() as u64;
        assert!(got >= lo && got <= hi, "{lo} <= {got} <= {hi}");
    }

    #[test]
    fn polygon_error_is_frozen_at_build_time() {
        use raster_geom::Polygon;
        let pts = points(10_000, 4);
        let tri = Polygon::from_coords(0, vec![(5.0, 5.0), (60.0, 8.0), (20.0, 58.0)]);
        let truth = pts.iter().filter(|p| tri.contains(**p)).count() as i64;
        // Coarser build → bigger error; finer build → smaller. No query-
        // time knob exists.
        let coarse = AggQuadtree::build(&pts, extent(), 3);
        let fine = AggQuadtree::build(&pts, extent(), 7);
        let e_coarse = (coarse.polygon_count_approx(&tri) as i64 - truth).abs();
        let e_fine = (fine.polygon_count_approx(&tri) as i64 - truth).abs();
        assert!(
            e_fine <= e_coarse,
            "finer pre-aggregation must not be worse: {e_fine} vs {e_coarse}"
        );
        // And the fine build costs ~16x the coarse one in stored values.
        assert!(fine.stored_values() > 16 * coarse.stored_values() / 2);
    }

    #[test]
    fn empty_build_is_zero_everywhere() {
        let c = AggQuadtree::build(&[], extent(), 4);
        let q = BBox::new(Point::new(0.0, 0.0), Point::new(64.0, 64.0));
        assert_eq!(c.range_count_approx(&q), 0);
    }
}
