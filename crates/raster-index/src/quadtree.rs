//! A region quadtree over points.
//!
//! Zhang et al. [69, 72] — the materializing baseline of Table 2 — index
//! their point sets with a quadtree "to achieve load balancing and enable
//! batch processing": leaves hold bounded point batches, so a polygon's
//! candidate set is gathered by walking only the leaves its MBR touches.
//! [`PointQuadtree`] reproduces that structure (the uniform
//! [`crate::PointGrid`] is the simpler alternative; the ablation bench
//! compares the two).

use raster_geom::{BBox, Point};

/// Maximum points per leaf before splitting.
const DEFAULT_LEAF_CAPACITY: usize = 256;
/// Maximum tree depth (guards against coincident points).
const MAX_DEPTH: usize = 24;

enum Node {
    Leaf(Vec<u32>),
    /// Children in quadrant order: SW, SE, NW, NE.
    Inner(Box<[Node; 4]>),
}

/// A point-region quadtree storing point *indices* into the caller's
/// table.
pub struct PointQuadtree {
    extent: BBox,
    root: Node,
    len: usize,
    leaf_capacity: usize,
}

fn quadrant(b: &BBox, p: Point) -> (usize, BBox) {
    let c = b.center();
    let east = p.x >= c.x;
    let north = p.y >= c.y;
    let q = (north as usize) * 2 + east as usize;
    let child = match q {
        0 => BBox::new(b.min, c),
        1 => BBox::new(Point::new(c.x, b.min.y), Point::new(b.max.x, c.y)),
        2 => BBox::new(Point::new(b.min.x, c.y), Point::new(c.x, b.max.y)),
        _ => BBox::new(c, b.max),
    };
    (q, child)
}

fn child_bbox(b: &BBox, q: usize) -> BBox {
    let c = b.center();
    match q {
        0 => BBox::new(b.min, c),
        1 => BBox::new(Point::new(c.x, b.min.y), Point::new(b.max.x, c.y)),
        2 => BBox::new(Point::new(b.min.x, c.y), Point::new(c.x, b.max.y)),
        _ => BBox::new(c, b.max),
    }
}

impl PointQuadtree {
    /// Build over all `points` inside `extent` (outside points are
    /// dropped, mirroring viewport clipping).
    pub fn build(points: &[Point], extent: BBox) -> Self {
        Self::with_leaf_capacity(points, extent, DEFAULT_LEAF_CAPACITY)
    }

    pub fn with_leaf_capacity(points: &[Point], extent: BBox, leaf_capacity: usize) -> Self {
        let leaf_capacity = leaf_capacity.max(1);
        let mut t = PointQuadtree {
            extent,
            root: Node::Leaf(Vec::new()),
            len: 0,
            leaf_capacity,
        };
        for (i, &p) in points.iter().enumerate() {
            if extent.contains(p) {
                insert(
                    &mut t.root,
                    &t.extent,
                    points,
                    i as u32,
                    p,
                    0,
                    leaf_capacity,
                );
                t.len += 1;
            }
        }
        t
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn extent(&self) -> BBox {
        self.extent
    }

    /// Maximum points per leaf before a split.
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Indices of points in leaves overlapping `query` (a superset of the
    /// points inside `query` — exact filtering is the caller's PIP step).
    pub fn candidates_in_bbox(&self, query: &BBox) -> Vec<u32> {
        let mut out = Vec::new();
        collect(&self.root, &self.extent, query, &mut out);
        out
    }

    /// Visit every leaf batch (index slice) — the batching interface
    /// Zhang's join uses for load balancing.
    pub fn for_each_leaf(&self, mut f: impl FnMut(&BBox, &[u32])) {
        walk(&self.root, &self.extent, &mut f);
    }

    /// Number of leaves (diagnostics / load-balance tests).
    pub fn leaf_count(&self) -> usize {
        let mut n = 0;
        self.for_each_leaf(|_, _| n += 1);
        n
    }
}

fn insert(
    node: &mut Node,
    bbox: &BBox,
    points: &[Point],
    idx: u32,
    p: Point,
    depth: usize,
    cap: usize,
) {
    match node {
        Node::Leaf(v) => {
            v.push(idx);
            if v.len() > cap && depth < MAX_DEPTH {
                // Split: redistribute into four children.
                let old = std::mem::take(v);
                let mut children: Box<[Node; 4]> = Box::new([
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                ]);
                for &i in &old {
                    let q = quadrant(bbox, points[i as usize]).0;
                    if let Node::Leaf(child) = &mut children[q] {
                        child.push(i);
                    }
                }
                *node = Node::Inner(children);
            }
        }
        Node::Inner(children) => {
            let (q, child_b) = quadrant(bbox, p);
            insert(&mut children[q], &child_b, points, idx, p, depth + 1, cap);
        }
    }
}

fn collect(node: &Node, bbox: &BBox, query: &BBox, out: &mut Vec<u32>) {
    if !bbox.intersects(query) {
        return;
    }
    match node {
        Node::Leaf(v) => out.extend_from_slice(v),
        Node::Inner(children) => {
            for q in 0..4 {
                collect(&children[q], &child_bbox(bbox, q), query, out);
            }
        }
    }
}

fn walk(node: &Node, bbox: &BBox, f: &mut impl FnMut(&BBox, &[u32])) {
    match node {
        Node::Leaf(v) => {
            if !v.is_empty() {
                f(bbox, v);
            }
        }
        Node::Inner(children) => {
            for q in 0..4 {
                walk(&children[q], &child_bbox(bbox, q), f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn all_points_retained() {
        let pts = random_points(10_000, 1);
        let t = PointQuadtree::build(&pts, extent());
        assert_eq!(t.len(), 10_000);
        let mut total = 0;
        t.for_each_leaf(|_, batch| total += batch.len());
        assert_eq!(total, 10_000);
    }

    #[test]
    fn leaves_respect_capacity_and_bounds() {
        let pts = random_points(5_000, 2);
        let t = PointQuadtree::with_leaf_capacity(&pts, extent(), 64);
        t.for_each_leaf(|bbox, batch| {
            assert!(batch.len() <= 64, "leaf overflow: {}", batch.len());
            for &i in batch {
                assert!(bbox.contains(pts[i as usize]), "point {i} outside its leaf");
            }
        });
        assert!(t.leaf_count() > 5_000 / 64);
    }

    #[test]
    fn bbox_query_superset_of_truth() {
        let pts = random_points(3_000, 3);
        let t = PointQuadtree::build(&pts, extent());
        let q = BBox::new(Point::new(20.0, 30.0), Point::new(55.0, 70.0));
        let cand = t.candidates_in_bbox(&q);
        for (i, p) in pts.iter().enumerate() {
            if q.contains(*p) {
                assert!(cand.contains(&(i as u32)), "missing point {i}");
            }
        }
        // And is selective: far fewer candidates than the whole set.
        assert!(cand.len() < pts.len());
    }

    #[test]
    fn skewed_data_splits_adaptively() {
        // 90% of points in one corner: the tree must refine there.
        let mut pts = random_points(500, 4);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..4_500 {
            pts.push(Point::new(rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0)));
        }
        let t = PointQuadtree::with_leaf_capacity(&pts, extent(), 128);
        let hot = BBox::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0));
        let cand = t.candidates_in_bbox(&hot);
        assert!(cand.len() >= 4_500);
        // The hot corner contributes most leaves.
        let mut hot_leaves = 0;
        let mut all_leaves = 0;
        t.for_each_leaf(|b, _| {
            all_leaves += 1;
            if b.intersects(&hot) {
                hot_leaves += 1;
            }
        });
        assert!(hot_leaves * 2 > all_leaves, "{hot_leaves}/{all_leaves}");
    }

    #[test]
    fn coincident_points_do_not_recurse_forever() {
        let pts = vec![Point::new(50.0, 50.0); 2_000];
        let t = PointQuadtree::with_leaf_capacity(&pts, extent(), 8);
        assert_eq!(t.len(), 2_000);
        let cand = t.candidates_in_bbox(&BBox::new(Point::new(49.0, 49.0), Point::new(51.0, 51.0)));
        assert_eq!(cand.len(), 2_000);
    }

    #[test]
    fn disjoint_query_is_empty() {
        let pts = random_points(100, 7);
        let t = PointQuadtree::build(&pts, extent());
        let q = BBox::new(Point::new(500.0, 500.0), Point::new(600.0, 600.0));
        assert!(t.candidates_in_bbox(&q).is_empty());
    }
}
