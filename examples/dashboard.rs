//! Visual-analytics dashboard (the paper's first motivating application).
//!
//! Urbane-style exploration: the user flips between distributions (count
//! of pickups, average fare), stacks attribute filters interactively, and
//! asks for guaranteed result ranges on demand. Every interaction is one
//! raster-join query; the example prints the latency of each step.
//!
//! Run with: `cargo run --release --example dashboard`

use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::join::ranges::estimate_count_ranges;
use raster_join_repro::prelude::*;
use std::time::Instant;

fn show_top(label: &str, polys_n: usize, values: &[f64], t: std::time::Duration) {
    let mut order: Vec<usize> = (0..polys_n).collect();
    order.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap());
    let top: Vec<String> = order
        .iter()
        .take(3)
        .map(|&i| format!("#{i}: {:.1}", values[i]))
        .collect();
    println!("  {label:<42} {t:>9.1?}   top: {}", top.join(", "));
}

fn main() {
    let points = TaxiModel::default().generate(600_000, 3);
    let polys = synthetic_polygons(64, &nyc_extent(), 5);
    let device = Device::default();
    let joiner = BoundedRasterJoin::default();
    let fare = points.attr_index("fare").unwrap();
    let hour = points.attr_index("hour").unwrap();
    let passengers = points.attr_index("passengers").unwrap();

    println!("interaction                                  latency");
    println!("-------------------------------------------------------------------");

    // 1. Initial heat map: COUNT per neighborhood.
    let q = Query::count().with_epsilon(20.0);
    let t = Instant::now();
    let out = joiner.execute(&points, &polys, &q, &device);
    show_top(
        "heat map: COUNT(*)",
        polys.len(),
        &out.values(Aggregate::Count),
        t.elapsed(),
    );

    // 2. Switch the distribution: AVG(fare).
    let q = Query::avg(fare).with_epsilon(20.0);
    let t = Instant::now();
    let out = joiner.execute(&points, &polys, &q, &device);
    show_top(
        "switch distribution: AVG(fare)",
        polys.len(),
        &out.values(q.aggregate),
        t.elapsed(),
    );

    // 3. Filter: weekday rush hours only.
    let q = Query::count().with_epsilon(20.0).with_predicates(vec![
        Predicate::new(hour, CmpOp::Ge, 40.0),
        Predicate::new(hour, CmpOp::Le, 60.0),
    ]);
    let t = Instant::now();
    let out = joiner.execute(&points, &polys, &q, &device);
    show_top(
        "filter: 40 ≤ hour ≤ 60",
        polys.len(),
        &out.values(Aggregate::Count),
        t.elapsed(),
    );

    // 4. Stack another filter: group rides.
    let q = Query::count().with_epsilon(20.0).with_predicates(vec![
        Predicate::new(hour, CmpOp::Ge, 40.0),
        Predicate::new(hour, CmpOp::Le, 60.0),
        Predicate::new(passengers, CmpOp::Ge, 3.0),
    ]);
    let t = Instant::now();
    let out = joiner.execute(&points, &polys, &q, &device);
    show_top(
        "+ filter: passengers ≥ 3",
        polys.len(),
        &out.values(Aggregate::Count),
        t.elapsed(),
    );

    // 5. Drill down with guarantees: result ranges (§5).
    let q = Query::count().with_epsilon(50.0);
    let t = Instant::now();
    let ranges = estimate_count_ranges(&points, &polys, &q, &device, 0);
    let dt = t.elapsed();
    let widest = ranges
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.worst_width().partial_cmp(&b.1.worst_width()).unwrap())
        .unwrap();
    println!(
        "  result ranges at ε = 50 m                  {dt:>9.1?}   widest: #{} A={} ∈ [{:.0}, {:.0}]",
        widest.0, widest.1.value, widest.1.worst_lo, widest.1.worst_hi
    );

    println!("\nall five interactions are independent raster-join queries —");
    println!("no cube, no pre-aggregation, polygons and filters set at query time.");
}
