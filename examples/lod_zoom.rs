//! Level-of-detail exploration (§4.2): overview first, zoom for detail.
//!
//! Reproduces the paper's LOD observation: with the canvas resolution
//! fixed (as in any visualization interface), zooming into a region of
//! interest shrinks the world-space pixel and therefore the effective ε —
//! the aggregation gets *more accurate for free*, at unchanged rendering
//! cost. Each zoom level also writes a PPM heat map of the point FBO so
//! the sharpening is visible.
//!
//! Run with: `cargo run --release --example lod_zoom`

use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::gpu::image::heatmap_of_counts;
use raster_join_repro::gpu::PointFbo;
use raster_join_repro::join::LodExplorer;
use raster_join_repro::prelude::*;

fn main() {
    let points = TaxiModel::default().generate(500_000, 13);
    let polys = synthetic_polygons(30, &nyc_extent(), 14);
    let device = Device::default();
    let lod = LodExplorer {
        workers: raster_join_repro::gpu::exec::default_workers(),
        canvas: (512, 512),
    };

    let mut view = nyc_extent();
    println!("canvas fixed at 512x512; zooming toward the Manhattan-like core\n");
    println!("level |        view size | effective ε | query time | total |err| in view");
    for level in 0..4 {
        let eps = lod.effective_epsilon(&view);
        let t = std::time::Instant::now();
        let out = lod.query_view(&view, &points, &polys, &Query::count(), &device);
        let dt = t.elapsed();

        // Error vs truth restricted to the view.
        let mut err = 0i64;
        for (i, poly) in polys.iter().enumerate() {
            if !poly.bbox().intersects(&view) {
                continue;
            }
            let truth = (0..points.len())
                .filter(|&k| {
                    let p = points.point(k);
                    view.contains(p) && poly.contains(p)
                })
                .count() as i64;
            err += (out.counts[i] as i64 - truth).abs();
        }
        println!(
            "  {level}   | {:7.1} x {:6.1} km | {eps:9.1} m | {dt:9.1?} | {err}",
            view.width() / 1000.0,
            view.height() / 1000.0
        );

        // Render this level's point density for the zoomed viewport.
        let vp = Viewport::new(view, 512, 512);
        let fbo = PointFbo::new(512, 512);
        for i in 0..points.len() {
            if let Some((x, y)) = vp.pixel_of(points.point(i)) {
                fbo.blend_add(x, y, 0.0);
            }
        }
        let img = heatmap_of_counts(&fbo);
        let path = std::env::temp_dir().join(format!("lod_zoom_level{level}.ppm"));
        img.write_ppm(&path).expect("write heat map");
        println!("        heat map written to {}", path.display());

        // Zoom 2x toward the dense core.
        let c = Point::new(
            view.min.x + 0.46 * view.width(),
            view.min.y + 0.45 * view.height(),
        );
        view = BBox::new(
            Point::new(c.x - view.width() / 4.0, c.y - view.height() / 4.0),
            Point::new(c.x + view.width() / 4.0, c.y + view.height() / 4.0),
        );
    }
    println!("\neffective ε halves at every level while the per-level cost stays flat.");
}
