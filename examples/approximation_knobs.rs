//! Approximation knobs compared: canvas resolution vs sample size vs
//! coordinate truncation.
//!
//! The paper's bounded raster join trades accuracy for time through ONE
//! knob — the ε-derived canvas resolution (§4.2) — and argues its error
//! is qualitatively better than the alternatives because it is confined
//! to an ε-band around polygon boundaries. This example quantifies that
//! claim against the other two approximation schemes that appear in §2:
//!
//! * sampling (online aggregation [65]): error ∝ 1/√n *everywhere*;
//! * coordinate truncation ([72]): one fixed global lattice, error set
//!   at encode time and unfixable per query.
//!
//! For each knob setting the table reports median/max per-polygon error
//! and the query time, so the error-vs-time frontier of each scheme is
//! visible side by side.
//!
//! Run with: `cargo run --release --example approximation_knobs`

use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::gpu::exec::default_workers;
use raster_join_repro::join::accuracy::{percent_errors, BoxStats};
use raster_join_repro::join::quantize::Quantizer;
use raster_join_repro::prelude::*;

fn main() {
    let n_points = 300_000;
    let w = default_workers();
    println!("generating {n_points} taxi-like points over 32 neighborhoods…");
    let points = TaxiModel::default().generate(n_points, 5);
    let polys = synthetic_polygons(32, &nyc_extent(), 5);
    let device = Device::default();

    let exact = IndexJoin::cpu_single()
        .execute(&points, &polys, &Query::count(), &device)
        .values(Aggregate::Count);

    let report = |name: String, vals: &[f64], time: std::time::Duration| {
        let errs = percent_errors(vals, &exact);
        let stats = BoxStats::of(&errs);
        let (median, max) = stats.map(|b| (b.median, b.max)).unwrap_or((0.0, 0.0));
        println!("  {name:<34} {median:>9.4}%  {max:>9.4}%  {time:>9.1?}");
    };

    println!("\n  knob setting                        median err   max err    time");
    println!("  ----------------------------------+-----------+----------+---------");

    // Knob 1: bounded raster join, ε sweep (the paper's knob).
    for eps in [160.0, 80.0, 40.0, 20.0, 10.0] {
        let out = BoundedRasterJoin::new(w).execute(
            &points,
            &polys,
            &Query::count().with_epsilon(eps),
            &device,
        );
        report(
            format!("raster ε = {eps:>5} m"),
            &out.values(Aggregate::Count),
            out.stats.total(),
        );
    }

    // Knob 2: sampling, n sweep.
    for n in [1_000usize, 10_000, 100_000] {
        let out = SamplingJoin::new(n, 3).execute(&points, &polys, &Query::count(), &device);
        report(
            format!("sampling n = {n:>7}"),
            &out.estimates,
            out.stats.total(),
        );
    }

    // Knob 3: coordinate truncation, bit sweep.
    for bits in [8u8, 12, 16] {
        let mut j = MaterializingJoin::new(w);
        j.coord_bits = Some(bits);
        let out = j.execute(&points, &polys, &Query::count(), &device);
        let extent = raster_join_repro::join::bounded::polygon_extent(&polys);
        let eps_equiv = Quantizer::new(extent, bits).epsilon_equivalent();
        report(
            format!("truncation {bits:>2} bits (≈ε {eps_equiv:.0} m)"),
            &out.values(Aggregate::Count),
            out.stats.total(),
        );
    }

    println!("\n  reading the table:");
    println!("  - the raster knob turns smoothly: halving ε roughly halves the error");
    println!("    at a quadratic cost in pixels (but points are drawn only once);");
    println!("  - sampling error falls like 1/√n and hits every polygon, hurting the");
    println!("    sparse ones most;");
    println!("  - truncation is a raster-like boundary error, but its lattice is fixed");
    println!("    globally at encode time — 16 bits is as good as it ever gets, and it");
    println!("    still pays every PIP test of the materializing join.");
}
