//! Fig. 6 reproduction: approximate vs accurate choropleth maps.
//!
//! Builds the per-neighborhood pickup-count "heat map" with the bounded
//! raster join at the paper's coarsest bound (ε = 20 m) and with the exact
//! variant, renders both as ASCII choropleths, and verifies the §7.6 JND
//! argument: with ≤9 perceivable color classes, the two maps are
//! indistinguishable when every normalized difference is below 1/9.
//!
//! Run with: `cargo run --release --example heatmap`

use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::join::accuracy::{max_normalized_error, JND};
use raster_join_repro::prelude::*;

/// Render per-polygon values as an ASCII choropleth: each character cell
/// is colored by the polygon owning its center.
fn ascii_choropleth(polys: &[Polygon], values: &[f64], cols: usize, rows: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let extent = nyc_extent();
    let vmax = values.iter().cloned().fold(f64::MIN, f64::max).max(1.0);
    let mut out = String::new();
    for r in (0..rows).rev() {
        out.push_str("  ");
        for c in 0..cols {
            let p = Point::new(
                extent.min.x + (c as f64 + 0.5) / cols as f64 * extent.width(),
                extent.min.y + (r as f64 + 0.5) / rows as f64 * extent.height(),
            );
            let ch = polys
                .iter()
                .find(|poly| poly.contains(p))
                .map(|poly| {
                    let v = values[poly.id() as usize] / vmax;
                    let k = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                    RAMP[k] as char
                })
                .unwrap_or(' ');
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let points = TaxiModel::default().generate(300_000, 1);
    let polys = synthetic_polygons(40, &nyc_extent(), 9);
    let device = Device::default();

    let approx = BoundedRasterJoin::default().execute(
        &points,
        &polys,
        &Query::count().with_epsilon(20.0),
        &device,
    );
    let exact = AccurateRasterJoin::default().execute(&points, &polys, &Query::count(), &device);

    let va = approx.values(Aggregate::Count);
    let ve = exact.values(Aggregate::Count);

    println!(
        "bounded raster join, ε = 20 m ({:?}):",
        approx.stats.total()
    );
    print!("{}", ascii_choropleth(&polys, &va, 64, 24));
    println!("\naccurate raster join ({:?}):", exact.stats.total());
    print!("{}", ascii_choropleth(&polys, &ve, 64, 24));

    let err = max_normalized_error(&va, &ve);
    println!("\nmax normalized difference: {err:.5}  (JND = {JND:.5})");
    if err < JND {
        println!("→ the two visualizations are perceptually indistinguishable, as in Fig. 6.");
    } else {
        println!("→ difference exceeds the JND (unexpected at ε = 20 m).");
    }
}
