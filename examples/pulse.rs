//! Pulse: per-neighborhood time series in ONE rendering pass.
//!
//! The paper's visual-analytics motivation slices everything by time —
//! the Fig. 1 heat maps are filtered to June 2012, and §9 points to
//! "more complex spatio-temporal joins" as future work. The naive way to
//! feed an animated heat map (or an urban-pulse-style rhythm chart [37])
//! is one filtered query per frame. `TemporalRasterJoin` instead widens
//! the FBO with one channel per time bucket, so a single DrawPoints +
//! DrawPolygons pass yields the full polygon × hour histogram.
//!
//! This example computes the weekly rhythm (24 buckets of 7 hours) of a
//! taxi-like workload over 16 neighborhoods, prints an ASCII intensity
//! strip per neighborhood, and verifies the one-pass result against
//! per-bucket filtered queries — reporting both times.
//!
//! Run with: `cargo run --release --example pulse`

use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::gpu::exec::default_workers;
use raster_join_repro::join::temporal::{TemporalRasterJoin, TimeBuckets};
use raster_join_repro::prelude::*;
use std::time::Instant;

fn main() {
    let n_points = 400_000;
    let n_buckets = 24;
    let w = default_workers();

    println!("generating {n_points} taxi-like points over 16 neighborhoods…");
    let points = TaxiModel::default().generate(n_points, 9);
    let polys = synthetic_polygons(16, &nyc_extent(), 9);
    let device = Device::default();
    let hour = points.attr_index("hour").unwrap();

    // The taxi model spreads the `hour` attribute over a week (0..168 h).
    let buckets = TimeBuckets::covering(hour, 0.0, 168.0, n_buckets);

    let t0 = Instant::now();
    let out = TemporalRasterJoin::new(w, 20.0).execute(&points, &polys, &buckets, &device);
    let one_pass = t0.elapsed();

    // The naive alternative: one filtered query per bucket.
    let t1 = Instant::now();
    let join = BoundedRasterJoin::new(w);
    for b in 0..n_buckets {
        let (lo, hi) = buckets.bounds(b);
        let q = Query::count().with_epsilon(20.0).with_predicates(vec![
            Predicate::new(hour, CmpOp::Ge, lo),
            Predicate::new(hour, CmpOp::Lt, hi),
        ]);
        let _ = join.execute(&points, &polys, &q, &device);
    }
    let per_bucket = t1.elapsed();

    // Render each neighborhood's rhythm as an intensity strip.
    const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
    println!("\n  weekly pulse per neighborhood ({n_buckets} buckets of 7 h):\n");
    println!("  id | rhythm                    | total");
    println!("  ---+--------------------------+-------");
    for poly in 0..polys.len() {
        let series = out.series(poly);
        let peak = *series.iter().max().unwrap_or(&1) as f64;
        let strip: String = series
            .iter()
            .map(|&v| {
                let idx = if peak == 0.0 {
                    0
                } else {
                    ((v as f64 / peak) * (SHADES.len() - 1) as f64).round() as usize
                };
                SHADES[idx]
            })
            .collect();
        println!("  {poly:2} | {strip} | {:6}", out.totals[poly]);
    }

    let peak = out.peak_bucket();
    let (lo, hi) = buckets.bounds(peak);
    println!("\n  city-wide peak: bucket {peak} (hours {lo:.0}–{hi:.0})");
    println!("\n  one widened pass: {one_pass:.1?}");
    println!("  {n_buckets} filtered queries: {per_bucket:.1?}");
    println!(
        "  speedup: {:.1}x (points are drawn once instead of {n_buckets} times)",
        per_bucket.as_secs_f64() / one_pass.as_secs_f64()
    );
}
