//! Interactive urban planning (the paper's second motivating application).
//!
//! Policy makers repeatedly redraw zonal boundaries and inspect the
//! aggregate of urban data over the new zones; the paper also describes
//! placing resources and aggregating over their restricted Voronoi cells.
//! Raster join makes each iteration interactive because the polygons are
//! processed on the fly — no pre-computation is invalidated by a boundary
//! change.
//!
//! This example simulates ten rezoning iterations: each round jitters the
//! zone seeds (changing every polygon), recomputes the restricted Voronoi
//! zones, and re-runs the aggregation, printing the per-round latency.
//!
//! Run with: `cargo run --release --example rezoning`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::geom::merge::merge_cells_into_polygons;
use raster_join_repro::geom::voronoi::voronoi_cells;
use raster_join_repro::prelude::*;
use std::time::Instant;

fn main() {
    let extent = nyc_extent();
    let points = TaxiModel::default().generate(400_000, 11);
    let device = Device::default();
    let joiner = BoundedRasterJoin::default();
    let query = Query::count().with_epsilon(20.0);
    let mut rng = StdRng::seed_from_u64(2);

    // Initial resource placement: 25 sites (think: bus depots).
    let mut sites: Vec<Point> = (0..100)
        .map(|_| {
            Point::new(
                rng.gen_range(extent.min.x..extent.max.x),
                rng.gen_range(extent.min.y..extent.max.y),
            )
        })
        .collect();

    println!("round | polygons rebuilt | query time | busiest zone (count)");
    println!("------+------------------+------------+---------------------");
    for round in 0..10 {
        // The planner nudges every site (a rezoning gesture).
        for s in &mut sites {
            s.x = (s.x + rng.gen_range(-800.0..800.0)).clamp(extent.min.x, extent.max.x - 1.0);
            s.y = (s.y + rng.gen_range(-800.0..800.0)).clamp(extent.min.y, extent.max.y - 1.0);
        }

        // Restricted Voronoi coverage zones, merged to 25 districts.
        let t0 = Instant::now();
        let cells = voronoi_cells(&sites, &extent);
        let zones = merge_cells_into_polygons(&cells, 25, &mut rng);
        let rebuild = t0.elapsed();

        let t1 = Instant::now();
        let out = joiner.execute(&points, &zones, &query, &device);
        let qtime = t1.elapsed();

        let (best, cnt) = out
            .counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, &c)| (i, c))
            .unwrap_or((0, 0));
        println!(
            "  {round:3} | {:>14.1?}   | {qtime:>9.1?}  | zone {best:2} ({cnt} pickups)",
            rebuild
        );
    }
    println!("\nevery iteration reprocesses the polygons from scratch — the");
    println!("raster join needs no pre-computed structure tied to the old zones.");
}
