//! Baseline showdown: every join strategy the paper discusses, one table.
//!
//! Runs the same COUNT query through the full lineage of §1/§2:
//!
//! 1. two-step filter-refine (R-tree filter → PIP refine → aggregate),
//!    the classical DBMS evaluation the paper argues against;
//! 2. the materializing GPU join of Zhang et al. [72], exact and with
//!    their 16-bit coordinate truncation;
//! 3. the fused index join (the paper's §6.2 baseline);
//! 4. the accurate raster join (§4.3);
//! 5. the bounded raster join (§4.1–4.2);
//! 6. the sampling estimator (the §2 online-aggregation alternative).
//!
//! and prints total counts, errors vs the exact answer, and the work/
//! transfer statistics that explain the ranking.
//!
//! Run with: `cargo run --release --example baseline_showdown`

use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::gpu::exec::default_workers;
use raster_join_repro::prelude::*;

fn main() {
    let n_points = 300_000;
    let n_polys = 32;
    let w = default_workers();

    println!("generating {n_points} taxi-like points and {n_polys} neighborhoods…");
    let points = TaxiModel::default().generate(n_points, 11);
    let polys = synthetic_polygons(n_polys, &nyc_extent(), 11);
    let device = Device::default();
    let query = Query::count().with_epsilon(20.0);

    // Exact reference.
    let exact = IndexJoin::cpu_single().execute(&points, &polys, &query, &device);
    let exact_vals = exact.values(Aggregate::Count);
    let total_exact: f64 = exact_vals.iter().sum();

    let max_err = |vals: &[f64]| -> f64 {
        vals.iter()
            .zip(&exact_vals)
            .map(|(v, e)| (v - e).abs() / e.max(1.0) * 100.0)
            .fold(0.0, f64::max)
    };

    struct Row {
        name: &'static str,
        total: f64,
        max_err_pct: f64,
        stats: ExecStats,
    }
    let mut rows = Vec::new();

    let two = TwoStepJoin::new(w).execute(&points, &polys, &query, &device);
    rows.push(Row {
        name: "two-step filter-refine ",
        total: two.total_count() as f64,
        max_err_pct: max_err(&two.values(Aggregate::Count)),
        stats: two.stats,
    });

    let mat = MaterializingJoin::new(w).execute(&points, &polys, &query, &device);
    rows.push(Row {
        name: "materializing [72]     ",
        total: mat.total_count() as f64,
        max_err_pct: max_err(&mat.values(Aggregate::Count)),
        stats: mat.stats,
    });

    let mut mat16 = MaterializingJoin::new(w);
    mat16.coord_bits = Some(16);
    let m16 = mat16.execute(&points, &polys, &query, &device);
    rows.push(Row {
        name: "materializing, 16-bit  ",
        total: m16.total_count() as f64,
        max_err_pct: max_err(&m16.values(Aggregate::Count)),
        stats: m16.stats,
    });

    let fused = IndexJoin::gpu(w).execute(&points, &polys, &query, &device);
    rows.push(Row {
        name: "fused index join (§6.2)",
        total: fused.total_count() as f64,
        max_err_pct: max_err(&fused.values(Aggregate::Count)),
        stats: fused.stats,
    });

    let acc = AccurateRasterJoin::default().execute(&points, &polys, &query, &device);
    rows.push(Row {
        name: "accurate raster (§4.3) ",
        total: acc.total_count() as f64,
        max_err_pct: max_err(&acc.values(Aggregate::Count)),
        stats: acc.stats,
    });

    let bounded = BoundedRasterJoin::new(w).execute(&points, &polys, &query, &device);
    rows.push(Row {
        name: "bounded raster (§4.2)  ",
        total: bounded.total_count() as f64,
        max_err_pct: max_err(&bounded.values(Aggregate::Count)),
        stats: bounded.stats,
    });

    let samp = SamplingJoin::new(10_000, 1).execute(&points, &polys, &query, &device);
    rows.push(Row {
        name: "sampling (n=10k) [65]  ",
        total: samp.estimates.iter().sum(),
        max_err_pct: max_err(&samp.estimates),
        stats: samp.stats,
    });

    println!("\n  exact total count: {total_exact}");
    println!(
        "\n  strategy                  total      max err%   time        PIP tests   pairs shipped"
    );
    println!(
        "  ------------------------+----------+----------+-----------+-----------+-------------"
    );
    for r in &rows {
        println!(
            "  {}  {:>9.0}  {:>8.3}%  {:>9.1?}  {:>10}  {:>12}",
            r.name,
            r.total,
            r.max_err_pct,
            r.stats.total(),
            r.stats.pip_tests,
            r.stats.candidate_pairs + r.stats.materialized_pairs,
        );
    }

    println!("\n  reading the table:");
    println!("  - the two-step join ships candidate AND result pairs (rightmost column);");
    println!("  - fusing the aggregation removes the pair traffic but keeps every PIP test;");
    println!("  - accurate raster keeps only boundary-pixel PIP tests;");
    println!("  - bounded raster eliminates PIP tests entirely (ε-bounded error);");
    println!("  - sampling is cheap but its error is spread over ALL polygons,");
    println!("    not confined to an ε-band around boundaries.");
}
