//! Quickstart: the paper's headline query end to end.
//!
//! Counts taxi-like pickups per "neighborhood" three ways — bounded raster
//! join (approximate, fastest), accurate raster join (exact, few PIP
//! tests) and the index-join baseline (exact, a PIP test per candidate
//! pair) — and prints results and execution statistics side by side.
//!
//! Run with: `cargo run --release --example quickstart`

use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::prelude::*;

fn main() {
    let n_points = 500_000;
    let n_polys = 32;

    println!("generating {n_points} taxi-like points and {n_polys} neighborhoods…");
    let points = TaxiModel::default().generate(n_points, 42);
    let polys = synthetic_polygons(n_polys, &nyc_extent(), 42);
    let device = Device::default();

    // SELECT COUNT(*) FROM points, polys
    // WHERE points.loc INSIDE polys.geometry GROUP BY polys.id
    let query = Query::count().with_epsilon(20.0); // ε = 20 m, as in Fig. 6

    let bounded = BoundedRasterJoin::default().execute(&points, &polys, &query, &device);
    let accurate = AccurateRasterJoin::default().execute(&points, &polys, &query, &device);
    let baseline = IndexJoin::gpu(raster_join_repro::gpu::exec::default_workers())
        .execute(&points, &polys, &query, &device);

    println!("\n  id | bounded (ε=20m) | accurate |  baseline");
    println!("  ---+-----------------+----------+----------");
    for i in 0..polys.len().min(12) {
        println!(
            "  {i:2} | {:15} | {:8} | {:8}",
            bounded.counts[i], accurate.counts[i], baseline.counts[i]
        );
    }
    if polys.len() > 12 {
        println!("  …  | ({} more polygons)", polys.len() - 12);
    }

    let errs = raster_join_repro::join::accuracy::percent_errors(
        &bounded.values(Aggregate::Count),
        &accurate.values(Aggregate::Count),
    );
    let median = raster_join_repro::join::accuracy::BoxStats::of(&errs)
        .map(|b| b.median)
        .unwrap_or(0.0);

    println!("\n  executor   total      processing  transfer   PIP tests");
    for (name, out) in [
        ("bounded ", &bounded),
        ("accurate", &accurate),
        ("baseline", &baseline),
    ] {
        println!(
            "  {name}   {:>8.1?}  {:>10.1?}  {:>8.1?}  {:>10}",
            out.stats.total(),
            out.stats.processing,
            out.stats.transfer,
            out.stats.pip_tests
        );
    }
    println!("\n  bounded-vs-accurate median error: {median:.3}% (ε = 20 m)");
    println!(
        "  visually indistinguishable (JND 1/9): {}",
        raster_join_repro::join::accuracy::visually_indistinguishable(
            &bounded.values(Aggregate::Count),
            &accurate.values(Aggregate::Count),
        )
    );
}
