//! Resource-coverage analysis with MIN/MAX aggregates.
//!
//! The paper's second motivating application places resources (bus stops,
//! police stations) and aggregates urban data over each resource's
//! *restricted Voronoi* coverage region. This example combines that
//! coverage construction (`raster_geom::coverage`) with the §5
//! distributive MIN/MAX aggregates (`raster_join::minmax`): for each of
//! 40 candidate "bus depot" sites, what are the cheapest and priciest
//! fares originating in its catchment, and how many trips does it serve?
//!
//! Run with: `cargo run --release --example coverage_minmax`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::geom::coverage::coverage_polygons;
use raster_join_repro::join::minmax::MinMaxRasterJoin;
use raster_join_repro::prelude::*;
use std::time::Instant;

fn main() {
    let extent = nyc_extent();
    let points = TaxiModel::default().generate(400_000, 31);
    let fare = points.attr_index("fare").unwrap();

    // Plan 40 depots at random (a planner would drag these interactively).
    let mut rng = StdRng::seed_from_u64(8);
    let sites: Vec<Point> = (0..40)
        .map(|_| {
            Point::new(
                rng.gen_range(extent.min.x..extent.max.x),
                rng.gen_range(extent.min.y..extent.max.y),
            )
        })
        .collect();

    let t0 = Instant::now();
    let regions = coverage_polygons(&sites, &extent);
    println!(
        "built {} coverage regions in {:?}\n",
        regions.len(),
        t0.elapsed()
    );

    let device = Device::default();
    let t1 = Instant::now();
    let counts = BoundedRasterJoin::default().execute(
        &points,
        &regions,
        &Query::count().with_epsilon(20.0),
        &device,
    );
    let t_count = t1.elapsed();
    let t2 = Instant::now();
    let mm = MinMaxRasterJoin::default().execute(&points, &regions, fare, &[], 20.0, &device);
    let t_mm = t2.elapsed();

    println!("depot | trips served | min fare | max fare");
    println!("------+--------------+----------+---------");
    let mut order: Vec<usize> = (0..regions.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(counts.counts[i]));
    for &i in order.iter().take(10) {
        println!(
            " {:4} | {:12} | {:8} | {:8}",
            i,
            counts.counts[i],
            mm.min[i].map_or("-".into(), |v| format!("{v:.2}")),
            mm.max[i].map_or("-".into(), |v| format!("{v:.2}")),
        );
    }
    println!(
        "\ncoverage query: COUNT in {t_count:?}, MIN/MAX in {t_mm:?} — fast enough to\n\
         re-run on every drag of a depot marker."
    );
}
