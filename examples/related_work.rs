//! Reproducing the paper's §2 argument against pre-aggregation.
//!
//! The paper dismisses cube structures (Nanocubes/Hashedcubes) and
//! aggregate R-trees because they (1) answer only rectangular regions,
//! (2) fix their error at build time, and (3) need costly pre-computation
//! that arbitrary-polygon queries invalidate. This example measures all
//! three claims against the raster join on the same workload.
//!
//! Run with: `cargo run --release --example related_work`

use raster_join_repro::data::generators::{nyc_extent, TaxiModel};
use raster_join_repro::data::polygons::synthetic_polygons;
use raster_join_repro::index::{ARTree, AggQuadtree};
use raster_join_repro::prelude::*;
use std::time::Instant;

fn main() {
    let points = TaxiModel::default().generate(400_000, 21);
    let polys = synthetic_polygons(24, &nyc_extent(), 22);
    let extent = nyc_extent();
    let device = Device::default();

    // --- build costs --------------------------------------------------
    let pts: Vec<Point> = (0..points.len()).map(|i| points.point(i)).collect();
    let t0 = Instant::now();
    let cube = AggQuadtree::build(&pts, extent, 10);
    let t_cube = t0.elapsed();
    let recs: Vec<(Point, f32)> = pts.iter().map(|&p| (p, 1.0)).collect();
    let t1 = Instant::now();
    let artree = ARTree::build(&recs);
    let t_art = t1.elapsed();
    println!(
        "pre-computation: AggQuadtree {t_cube:?} ({} stored values), aR-tree {t_art:?}",
        cube.stored_values()
    );
    println!("raster join pre-computation: none (polygons processed per query)\n");

    // --- ground truth + raster join ------------------------------------
    let exact = AccurateRasterJoin::default().execute(&points, &polys, &Query::count(), &device);
    let t2 = Instant::now();
    let bounded = BoundedRasterJoin::default().execute(
        &points,
        &polys,
        &Query::count().with_epsilon(20.0),
        &device,
    );
    let t_bounded = t2.elapsed();

    // --- polygon queries through each structure -------------------------
    println!("per-polygon COUNT, arbitrary polygons:");
    println!("  poly |    exact | raster(ε=20m) | cube approx | aR-tree (MBR)");
    let mut cube_err = 0i64;
    let mut art_err = 0i64;
    let mut raster_err = 0i64;
    let t3 = Instant::now();
    let cube_counts: Vec<u64> = polys.iter().map(|p| cube.polygon_count_approx(p)).collect();
    let t_cube_q = t3.elapsed();
    let t4 = Instant::now();
    let art_counts: Vec<u64> = polys
        .iter()
        .map(|p| artree.polygon_count_via_mbr(p))
        .collect();
    let t_art_q = t4.elapsed();
    for (i, poly) in polys.iter().enumerate() {
        let e = exact.counts[i] as i64;
        cube_err += (cube_counts[i] as i64 - e).abs();
        art_err += (art_counts[i] as i64 - e).abs();
        raster_err += (bounded.counts[i] as i64 - e).abs();
        if i < 8 {
            println!(
                "  {:4} | {:8} | {:13} | {:11} | {:10}",
                poly.id(),
                e,
                bounded.counts[i],
                cube_counts[i],
                art_counts[i]
            );
        }
    }
    let total: i64 = exact.counts.iter().map(|&c| c as i64).sum();
    println!(
        "\ntotal |abs error| over {} polygons (total count {total}):",
        polys.len()
    );
    println!("  bounded raster join (ε=20m): {raster_err}  in {t_bounded:?}");
    println!("  cube center-snap:            {cube_err}  in {t_cube_q:?} (error frozen at build)");
    println!("  aR-tree via MBR:             {art_err}  in {t_art_q:?} (rectangles only)");
    println!("\nThe cube/aR-tree answer rectangles well — but these polygons are");
    println!("not rectangles, and their error cannot be tightened per query.");
}
