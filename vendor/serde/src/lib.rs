//! Offline stand-in for `serde`: only the derive re-exports this
//! workspace's types reference. See the `serde_derive` shim for why the
//! derives are no-ops.

pub use serde_derive::{Deserialize, Serialize};
