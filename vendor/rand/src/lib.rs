//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Everything in this workspace needs only deterministic, seedable
//! pseudo-randomness for workload generation and tests: `StdRng` +
//! `SeedableRng::seed_from_u64` + `Rng::{gen_range, gen_bool, gen}`.
//! The generator is xoshiro256++ seeded through SplitMix64 — not
//! cryptographic, but high-quality and byte-for-byte reproducible across
//! platforms, which is what the seeded experiments rely on.

pub mod rngs {
    /// The standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Core sampling trait (subset).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly samplable from a half-open or inclusive interval.
/// The single blanket `SampleRange` impl below is what lets type
/// inference flow from the range literal to the sampled value, exactly
/// as in real rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        lo + (hi - lo) * unit_f64(rng) as f32
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                debug_assert!(span > 0);
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range sampling support, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Sequence sampling (subset of `rand::seq`).
pub mod seq {
    pub mod index {
        use crate::{Rng, RngCore};

        /// Distinct indices sampled from `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Sample `amount` distinct indices from `0..length` without
        /// replacement (partial Fisher–Yates over a lazy identity map).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            use std::collections::HashMap;
            let mut swaps: HashMap<usize, usize> = HashMap::new();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                let vj = *swaps.get(&j).unwrap_or(&j);
                let vi = *swaps.get(&i).unwrap_or(&i);
                out.push(vj);
                swaps.insert(j, vi);
            }
            IndexVec(out)
        }
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        unit_f64(self) < p
    }

    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = r.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&f));
            let i = r.gen_range(5usize..9);
            assert!((5..9).contains(&i));
            let j = r.gen_range(0u32..=3);
            assert!(j <= 3);
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut r = rngs::StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
