//! Offline stand-in for the `crossbeam` crate.
//!
//! The container image has no crates.io access, so the workspace vendors
//! the *exact* API subset it consumes: `crossbeam::thread::scope` with
//! `Scope::spawn`. Implemented over `std::thread::scope` (stable since
//! 1.63), which provides the same structured-concurrency guarantee —
//! every spawned thread joins before `scope` returns.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The spawn handle passed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a unit placeholder
        /// where crossbeam passes a nested `&Scope` (no caller in this
        /// workspace spawns from inside a worker).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Run `f` with a scope handle; joins all spawned threads before
    /// returning. A panic on any worker surfaces as `Err`, matching
    /// crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let n = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| n.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_panic_is_an_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
