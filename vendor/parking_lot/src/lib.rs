//! Offline stand-in for the `parking_lot` crate: a `Mutex` whose `lock`
//! returns the guard directly (no `Result`). Backed by `std::sync::Mutex`;
//! poisoning is transparently unwrapped, which matches parking_lot's
//! no-poisoning semantics for the panic-free critical sections in this
//! workspace.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
