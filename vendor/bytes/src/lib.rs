//! Offline stand-in for the `bytes` crate: a growable byte buffer with
//! little-endian put/get accessors — exactly the subset the columnar disk
//! format uses.

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer (`Vec<u8>` underneath).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Writing primitives into a buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Reading primitives from a buffer, advancing a cursor. Implemented for
/// `&[u8]` so a slice reference can be consumed in place.
pub trait Buf {
    fn copy_to_array<const N: usize>(&mut self) -> [u8; N];

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_to_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_to_array())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.copy_to_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_to_array())
    }
}

impl Buf for &[u8] {
    fn copy_to_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.split_at(N);
        *self = tail;
        head.try_into().expect("split_at returned N bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_primitives() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u64_le(0xdead_beef_0102_0304);
        b.put_u32_le(77);
        b.put_f64_le(-1.5);
        b.put_f32_le(2.25);
        b.put_slice(b"xy");
        assert_eq!(b.len(), 8 + 4 + 8 + 4 + 2);
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u64_le(), 0xdead_beef_0102_0304);
        assert_eq!(r.get_u32_le(), 77);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.get_f32_le(), 2.25);
        assert_eq!(r, b"xy");
    }

    #[test]
    fn clear_keeps_capacity_semantics() {
        let mut b = BytesMut::new();
        b.put_u32_le(1);
        b.clear();
        assert!(b.is_empty());
        b.put_u32_le(2);
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u32_le(), 2);
    }
}
