//! Offline stand-in for `criterion`: runs each benchmark a configured
//! number of times and prints min/mean wall-clock per iteration. No
//! statistics engine, no HTML reports — just enough to keep the seed's
//! bench suite runnable and comparable run-to-run offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput annotation (recorded, reported as elements/sec when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the measured closure; `iter` times one call per sample.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call, then the timed samples.
        black_box(f());
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.results.push(t0.elapsed());
        }
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.results.is_empty() {
        return;
    }
    let min = b.results.iter().min().copied().unwrap_or_default();
    let total: Duration = b.results.iter().sum();
    let mean = total / b.results.len() as u32;
    let mut line = format!(
        "{id:<60} min {:>10.3?}  mean {:>10.3?}  ({} samples)",
        min,
        mean,
        b.results.len()
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let eps = n as f64 / mean.as_secs_f64().max(1e-12);
        line.push_str(&format!("  {:.2} Melem/s", eps / 1e6));
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.crit.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.crit.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.0), &b, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.crit.sample_size,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name} --");
        BenchmarkGroup {
            name,
            crit: self,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        report(&id.0, &b, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    criterion_group!(benches, work);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
