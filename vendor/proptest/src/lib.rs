//! Offline stand-in for `proptest`: the strategy/`proptest!` subset this
//! workspace's property suites use, driven by deterministic random
//! sampling.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports its inputs (via the panic
//!   message of the failing assertion) but is not minimized.
//! * **Deterministic** — each test derives its RNG seed from the test
//!   name, so a failure reproduces exactly on re-run.
//! * `prop_assume!` rejects the case; a test errors out if fewer than the
//!   configured number of cases survive 20× that many attempts, so an
//!   over-restrictive assumption cannot silently pass a vacuous test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration (subset: `cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why one sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — resample, don't fail.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. `sample` draws one value; combinators mirror the
/// proptest names the workspace uses (`prop_map`).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                let mut r = rand::RngCore::next_u64(rng);
                // Widen past 64 bits when needed (u128 unused here, but
                // keep the cast well-defined for every width).
                if <$t>::BITS > 64 {
                    r ^= rand::RngCore::next_u64(rng).rotate_left(1);
                }
                r as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Marker strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start < self.len.end {
                rng.gen_range(self.len.start..self.len.end)
            } else {
                self.len.start
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// The `prop::` facade used by `use proptest::prelude::*` call sites.
pub mod prop {
    pub use crate::collection;
}

/// Derive a stable 64-bit seed from a test name (FNV-1a).
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Drive one property: sample inputs until `cases` accepted runs (or the
/// rejection budget is exhausted).
pub fn run_property<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let mut rng = StdRng::seed_from_u64(seed_of(name));
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let budget = cfg.cases as u64 * 20;
    while accepted < cfg.cases {
        if attempts >= budget {
            panic!(
                "property '{name}': only {accepted}/{} cases survived \
                 prop_assume! after {attempts} attempts — assumptions too \
                 restrictive",
                cfg.cases
            );
        }
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at attempt {attempts}: {msg}")
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)*),
                a,
                b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// The `proptest!` block: expands each contained function into a plain
/// test driving [`run_property`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            $crate::run_property(stringify!($name), &cfg, |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in -5.0f64..5.0,
            (n, m) in (1usize..10, 0u32..3),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(m < 3);
        }

        #[test]
        fn prop_map_applies(v in (0usize..4).prop_map(|n| n * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 8);
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0i32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v { prop_assert!((0..100).contains(x)); }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(super::seed_of("a"), super::seed_of("a"));
        assert_ne!(super::seed_of("a"), super::seed_of("b"));
    }

    #[test]
    #[should_panic(expected = "assumptions too restrictive")]
    fn impossible_assumption_errors_out() {
        super::run_property("impossible", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::Reject)
        });
    }
}
