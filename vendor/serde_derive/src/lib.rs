//! Offline stand-in for `serde_derive`: the derives parse (so type
//! definitions annotated with `#[derive(Serialize, Deserialize)]` keep
//! compiling) and expand to nothing. No code in this workspace serializes
//! through serde — the derives on the geometry types exist for downstream
//! consumers, which the offline build does not have.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
